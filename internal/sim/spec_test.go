package sim

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	"fdpsim/internal/trace"
	"fdpsim/internal/workload/spec"
)

// specTestConfig mirrors the golden test's small-scale configuration so
// spec runs exercise real cache pressure quickly.
func specTestConfig() Config {
	cfg := Default()
	cfg.MaxInsts = 60000
	cfg.L1Blocks = 128
	cfg.L1Ways = 4
	cfg.L1IBlocks = 256
	cfg.L1IWays = 4
	cfg.L2Blocks = 1024
	cfg.L2Ways = 16
	cfg.MSHRs = 32
	cfg.PrefQueueCap = 32
	cfg.FDP.TInterval = 64
	return cfg
}

func oneLaneSpec() *spec.Spec {
	return &spec.Spec{
		Name: "spec.single",
		Phases: []spec.Phase{
			{Ops: 8000, Clients: []spec.Client{
				{Name: "stream", Weight: 3, Pattern: spec.Pattern{
					Kind: spec.KindStride, FootprintKB: 2048, Gap: 1,
					Strides: []spec.Stride{{Bytes: 64, Weight: 8}, {Bytes: 192, Weight: 2}},
				}},
				{Name: "chase", BurstOn: 2, BurstOff: 4, Pattern: spec.Pattern{
					Kind: spec.KindChase, FootprintKB: 1024,
				}},
			}},
			{Ops: 8000, Clients: []spec.Client{
				{Name: "hot", Pattern: spec.Pattern{
					Kind: spec.KindHotset, WorkingSetKB: 128, Gap: 2, StoreEvery: 5,
				}},
			}},
		},
	}
}

func twoLaneSpec() *spec.Spec {
	sp := oneLaneSpec()
	sp.Name = "spec.duo"
	sp.Phases[0].Clients[1].Lane = 1
	sp.Phases[1].Clients = append(sp.Phases[1].Clients, spec.Client{
		Name: "rand", Lane: 1, Pattern: spec.Pattern{Kind: spec.KindRandom, FootprintKB: 4096, Gap: 1},
	})
	return sp
}

// resultJSON canonicalizes a Result for comparison (wall clock zeroed).
func resultJSON(t *testing.T, r Result) []byte {
	t.Helper()
	r.Elapsed = 0
	raw, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestRunSpecGoldenDeterminism is the reproducibility acceptance test:
// the same (spec, seed) yields an identical fingerprint, bit-identical
// results across two independent in-memory runs, byte-identical trace-v2
// recordings — and a replay of that recording reproduces the in-memory
// result exactly.
func TestRunSpecGoldenDeterminism(t *testing.T) {
	sp := oneLaneSpec()
	cfg := specTestConfig()
	cfg.Seed = 99

	fp1, ok := FingerprintSpec(cfg, sp)
	if !ok {
		t.Fatal("FingerprintSpec not ok")
	}
	fp2, _ := FingerprintSpec(cfg, sp)
	if fp1 != fp2 {
		t.Fatalf("fingerprint not stable: %s vs %s", fp1, fp2)
	}

	r1, err := RunSpec(cfg, sp)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunSpec(cfg, sp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resultJSON(t, r1), resultJSON(t, r2)) {
		t.Fatal("two in-memory runs of the same (spec, seed) differ")
	}

	// Record the spec to trace-v2 twice: byte-identical files. The retire
	// target plus slack covers every op the pipeline fetches past it.
	record := func() []byte {
		var buf bytes.Buffer
		w, err := trace.NewWriterV2(&buf, sp.Name)
		if err != nil {
			t.Fatal(err)
		}
		src := sp.Source(0, cfg.Seed)
		for i := uint64(0); i < cfg.MaxInsts+8192; i++ {
			if err := w.Write(src.Next()); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	t1, t2 := record(), record()
	if !bytes.Equal(t1, t2) {
		t.Fatal("two trace-v2 recordings of the same (spec, seed) differ")
	}

	// Replaying the recording must reproduce the in-memory result bit for
	// bit: the trace front end is equivalent to generating in memory.
	r, err := trace.NewReaderV2(bytes.NewReader(t1))
	if err != nil {
		t.Fatal(err)
	}
	replayCfg := cfg
	replayCfg.Workload = sp.Name
	r3, err := RunSource(replayCfg, r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resultJSON(t, r1), resultJSON(t, r3)) {
		t.Fatal("trace-v2 replay result differs from the in-memory run")
	}
	if r.Err() != nil {
		t.Fatalf("replay reader error: %v", r.Err())
	}
}

func TestRunSpecSeedSensitivity(t *testing.T) {
	sp := oneLaneSpec()
	cfg := specTestConfig()
	cfg.Seed = 1
	r1, err := RunSpec(cfg, sp)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 2
	r2, err := RunSpec(cfg, sp)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(resultJSON(t, r1), resultJSON(t, r2)) {
		t.Fatal("different seeds produced identical results")
	}
	if r1.Workload != "spec.single" {
		t.Fatalf("Result.Workload = %q, want the spec name", r1.Workload)
	}
}

func TestRunSpecErrors(t *testing.T) {
	cfg := specTestConfig()
	if _, err := RunSpec(cfg, nil); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("nil spec: %v", err)
	}
	if _, err := RunSpec(cfg, &spec.Spec{Name: "x"}); !errors.Is(err, spec.ErrInvalid) {
		t.Fatalf("invalid spec: %v", err)
	}
	if _, err := RunSpec(cfg, twoLaneSpec()); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("multi-lane spec on one core: %v", err)
	}
}

func TestRunSpecMulti(t *testing.T) {
	sp := twoLaneSpec()
	tmpl := specTestConfig()
	tmpl.MaxInsts = 30000
	res, err := RunSpecMulti(tmpl, sp)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cores) != 2 {
		t.Fatalf("got %d cores, want 2", len(res.Cores))
	}
	for i, cr := range res.Cores {
		if cr.Workload != "spec.duo" {
			t.Fatalf("core %d workload = %q", i, cr.Workload)
		}
		if cr.Counters.Retired == 0 {
			t.Fatalf("core %d retired nothing", i)
		}
	}
	// Deterministic too.
	res2, err := RunSpecMulti(tmpl, sp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != res2.Cycles || res.TotalBusAccesses != res2.TotalBusAccesses {
		t.Fatal("multicore spec run not reproducible")
	}
}

func TestRunSpecSMT(t *testing.T) {
	sp := twoLaneSpec()
	base := specTestConfig()
	base.MaxInsts = 30000
	res, err := RunSpecSMT(base, sp)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Threads) != 2 {
		t.Fatalf("got %d threads, want 2", len(res.Threads))
	}
	for i, th := range res.Threads {
		if th.Workload != "spec.duo" || th.Retired == 0 {
			t.Fatalf("thread %d: %+v", i, th)
		}
	}
}

func TestFingerprintSpecProperties(t *testing.T) {
	cfg := specTestConfig()
	sp := oneLaneSpec()

	fp, ok := FingerprintSpec(cfg, sp)
	if !ok || fp == "" {
		t.Fatal("FingerprintSpec failed on a valid pair")
	}
	// Never aliases a named-workload fingerprint of the same config.
	named := cfg
	named.Workload = sp.Name
	if nfp, ok := Fingerprint(named); ok && nfp == fp {
		t.Fatal("spec fingerprint aliases the named-workload fingerprint")
	}
	// Sensitive to the spec...
	mut := oneLaneSpec()
	mut.Phases[0].Clients[0].Weight = 4
	if fp2, _ := FingerprintSpec(cfg, mut); fp2 == fp {
		t.Fatal("fingerprint ignores spec changes")
	}
	// ...and to the config...
	cfg2 := cfg
	cfg2.MaxInsts++
	if fp3, _ := FingerprintSpec(cfg2, sp); fp3 == fp {
		t.Fatal("fingerprint ignores config changes")
	}
	// ...but not to spelled-out defaults.
	dflt := oneLaneSpec()
	dflt.Phases[1].Clients[0].Weight = 1
	dflt.Phases[1].Clients[0].BurstOn = 1
	if fp4, _ := FingerprintSpec(cfg, dflt); fp4 != fp {
		t.Fatal("explicit defaults changed the fingerprint")
	}
	// Custom prefetchers and nil/invalid specs are not fingerprintable.
	bad := cfg
	bad.Prefetcher = PrefCustom
	if _, ok := FingerprintSpec(bad, sp); ok {
		t.Fatal("custom prefetcher fingerprinted")
	}
	if _, ok := FingerprintSpec(cfg, nil); ok {
		t.Fatal("nil spec fingerprinted")
	}
	if _, ok := FingerprintSpec(cfg, &spec.Spec{Name: "x"}); ok {
		t.Fatal("invalid spec fingerprinted")
	}
}

func TestValidateSpecJob(t *testing.T) {
	cfg := specTestConfig()
	if err := ValidateSpecJob(cfg, oneLaneSpec()); err != nil {
		t.Fatal(err)
	}
	if err := ValidateSpecJob(cfg, nil); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("nil spec: %v", err)
	}
	if err := ValidateSpecJob(cfg, twoLaneSpec()); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("multi-lane spec: %v", err)
	}
	bad := cfg
	bad.Prefetcher = PrefCustom
	if err := ValidateSpecJob(bad, oneLaneSpec()); err == nil {
		t.Fatal("custom prefetcher accepted as a spec job")
	}
}
