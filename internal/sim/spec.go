package sim

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"fdpsim/internal/workload/spec"
)

// Spec-driven runs: a declarative WorkloadSpec replaces the registry
// lookup, with the spec's lanes mapping onto cores (multicore) or
// hardware threads (SMT). Generation is a pure function of (spec, seed),
// so spec runs fingerprint and memoize exactly like named workloads —
// FingerprintSpec folds the spec's canonical JSON into the config hash
// without touching Config itself, keeping every existing Fingerprint
// (and the content-addressed stores keyed on them) stable.

// RunSpec executes a single-lane WorkloadSpec on one core.
func RunSpec(cfg Config, sp *spec.Spec) (Result, error) {
	return RunSpecContext(context.Background(), cfg, sp)
}

// RunSpecContext is RunSpec under a context, with RunContext's
// cancellation, deadline and progress-streaming semantics. The config's
// Workload field is overwritten with the spec's name; multi-lane specs
// must run through RunSpecMultiContext or RunSpecSMTContext.
func RunSpecContext(ctx context.Context, cfg Config, sp *spec.Spec) (Result, error) {
	if sp == nil {
		return Result{}, fmt.Errorf("%w: nil workload spec", ErrInvalidConfig)
	}
	if err := sp.Validate(); err != nil {
		return Result{}, err
	}
	if lanes := sp.Lanes(); lanes > 1 {
		return Result{}, fmt.Errorf("%w: spec %s targets %d lanes; use RunSpecMultiContext or RunSpecSMTContext",
			ErrInvalidConfig, sp.Name, lanes)
	}
	cfg.Workload = sp.Name
	return RunSourceContext(ctx, cfg, sp.Source(0, cfg.Seed))
}

// RunSpecMulti executes a WorkloadSpec across cores, one lane per core.
func RunSpecMulti(tmpl Config, sp *spec.Spec) (MultiResult, error) {
	return RunSpecMultiContext(context.Background(), tmpl, sp)
}

// RunSpecMultiContext runs each spec lane on its own core, all cores
// configured from tmpl (Workload overwritten with the spec's name) and
// contending for one shared memory bus. Spec clients generate into
// disjoint per-client address windows, so no extra relocation is applied.
func RunSpecMultiContext(ctx context.Context, tmpl Config, sp *spec.Spec) (MultiResult, error) {
	if sp == nil {
		return MultiResult{}, fmt.Errorf("%w: nil workload spec", ErrInvalidConfig)
	}
	if err := sp.Validate(); err != nil {
		return MultiResult{}, err
	}
	tmpl.Workload = sp.Name
	mc := MultiConfig{Sources: sp.Sources(tmpl.Seed)}
	for i := 0; i < sp.Lanes(); i++ {
		mc.Cores = append(mc.Cores, tmpl)
	}
	return RunMultiContext(ctx, mc)
}

// RunSpecSMT executes a WorkloadSpec's lanes as hardware threads sharing
// one cache hierarchy.
func RunSpecSMT(base Config, sp *spec.Spec) (SMTResult, error) {
	return RunSpecSMTContext(context.Background(), base, sp)
}

// RunSpecSMTContext runs each spec lane as one hardware thread over a
// shared L2, prefetcher and FDP engine configured from base. The usual
// SMT restrictions apply (no WarmupInsts).
func RunSpecSMTContext(ctx context.Context, base Config, sp *spec.Spec) (SMTResult, error) {
	if sp == nil {
		return SMTResult{}, fmt.Errorf("%w: nil workload spec", ErrInvalidConfig)
	}
	if err := sp.Validate(); err != nil {
		return SMTResult{}, err
	}
	cfg := SMTConfig{Base: base, Sources: sp.Sources(base.Seed)}
	for i := 0; i < sp.Lanes(); i++ {
		cfg.Workloads = append(cfg.Workloads, sp.Name)
	}
	return RunSMTContext(ctx, cfg)
}

// FingerprintSpec is Fingerprint for spec-driven runs: a stable content
// hash over the config's semantic fields plus the spec's canonical JSON.
// Two (config, spec) pairs share a fingerprint exactly when a completed
// spec run of one is a valid result for the other; specs that only differ
// in spelled-out defaults hash identically (see spec.Canonical). Named-
// workload fingerprints are untouched: a spec run can never alias one
// because the "spec" domain separator never appears in Fingerprint's
// input.
func FingerprintSpec(cfg Config, sp *spec.Spec) (fp string, ok bool) {
	if cfg.Prefetcher == PrefCustom || sp == nil {
		return "", false
	}
	canon, err := sp.Canonical()
	if err != nil {
		return "", false
	}
	cfg.Custom = nil
	cfg.Progress = nil
	cfg.Tracer = nil
	cfg.Workload = sp.Name
	sum := sha256.Sum256([]byte(fingerprintVersion + "\x00spec\x00" + string(canon) + "\x00" + fmt.Sprintf("%+v", cfg)))
	return hex.EncodeToString(sum[:]), true
}

// ValidateSpecJob is ValidateJob for spec-driven submissions: the spec
// must validate, fit on the single core a job runs on, and the pair must
// be fingerprintable so the result is cacheable and deduplicatable.
func ValidateSpecJob(cfg Config, sp *spec.Spec) error {
	if sp == nil {
		return fmt.Errorf("%w: nil workload spec", ErrInvalidConfig)
	}
	if err := sp.Validate(); err != nil {
		return err
	}
	if lanes := sp.Lanes(); lanes > 1 {
		return fmt.Errorf("%w: spec %s targets %d lanes; jobs run on one core", ErrInvalidConfig, sp.Name, lanes)
	}
	cfg.Workload = sp.Name
	if err := cfg.Validate(); err != nil {
		return err
	}
	if cfg.Prefetcher == PrefCustom {
		return fmt.Errorf("%w: custom prefetchers cannot run as jobs (no stable fingerprint)", ErrInvalidConfig)
	}
	return nil
}
