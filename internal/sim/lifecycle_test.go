package sim

import (
	"context"
	"errors"
	"testing"
	"time"
)

// fdpCfg returns a fast FDP configuration whose sampling intervals close
// quickly, so lifecycle tests exercise the interval-boundary checks.
func fdpCfg(w string) Config {
	cfg := WithFDP(PrefStream)
	cfg.Workload = w
	cfg.MaxInsts = 2_000_000
	cfg.FDP.TInterval = 256
	return cfg
}

func TestRunContextCancelWithinOneInterval(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	cfg := fdpCfg("chaserand")
	var cancelAt Snapshot
	cfg.Progress = func(s Snapshot) {
		if s.Final || cancelAt.Interval != 0 {
			return
		}
		cancelAt = s
		cancel()
	}

	res, err := RunContext(ctx, cfg)
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if !errors.Is(err, ErrCancelled) {
		t.Errorf("error %v does not match ErrCancelled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not match context.Canceled", err)
	}
	var ce *CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("error %v is not a *CancelError", err)
	}
	if !res.Partial {
		t.Error("cancelled run not marked Partial")
	}
	if res.Counters.Retired >= cfg.MaxInsts {
		t.Errorf("retired %d reached the %d target despite cancellation", res.Counters.Retired, cfg.MaxInsts)
	}
	if ce.Retired != res.Counters.Retired || ce.Target != cfg.MaxInsts {
		t.Errorf("CancelError{Retired: %d, Target: %d} disagrees with Result (retired %d, target %d)",
			ce.Retired, ce.Target, res.Counters.Retired, cfg.MaxInsts)
	}
	if cancelAt.Interval == 0 {
		t.Fatal("progress sink never ran")
	}
	// The cancel fired inside the sink for interval cancelAt.Interval, so
	// the run must stop before another full sampling interval elapses.
	if res.Intervals > cancelAt.Interval+1 {
		t.Errorf("run continued for %d intervals after cancelling at interval %d",
			res.Intervals-cancelAt.Interval, cancelAt.Interval)
	}
}

func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunContext(ctx, fdpCfg("seqstream"))
	if !errors.Is(err, ErrCancelled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled context: err = %v", err)
	}
	if !res.Partial {
		t.Error("result not marked Partial")
	}
	// The stride fallback must notice the dead context almost immediately.
	if res.Counters.Retired > 100_000 {
		t.Errorf("retired %d instructions under a pre-cancelled context", res.Counters.Retired)
	}
}

func TestRunContextDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	cfg := fdpCfg("seqstream")
	cfg.MaxInsts = 50_000_000 // far more than a millisecond of simulation
	res, err := RunContext(ctx, cfg)
	if !errors.Is(err, ErrCancelled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline: err = %v", err)
	}
	if !res.Partial || res.Counters.Retired >= cfg.MaxInsts {
		t.Errorf("Partial=%v retired=%d after deadline expiry", res.Partial, res.Counters.Retired)
	}
}

func TestProgressSnapshotsMonotonicAndFinalMatchesResult(t *testing.T) {
	cfg := fdpCfg("mixedphase")
	cfg.MaxInsts = 200_000
	var snaps []Snapshot
	cfg.Progress = func(s Snapshot) { snaps = append(snaps, s) }

	res, err := RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("no progress snapshots for an FDP run")
	}
	var prev Snapshot
	for i, s := range snaps[:len(snaps)-1] {
		if s.Final {
			t.Fatalf("snapshot %d marked Final before the end of the run", i)
		}
		if s.Retired < prev.Retired || s.Cycle < prev.Cycle {
			t.Errorf("snapshot %d went backwards: retired %d->%d, cycle %d->%d",
				i, prev.Retired, s.Retired, prev.Cycle, s.Cycle)
		}
		if s.Interval != prev.Interval+1 {
			t.Errorf("snapshot %d: interval %d after %d", i, s.Interval, prev.Interval)
		}
		if s.Target != cfg.MaxInsts {
			t.Errorf("snapshot %d: target %d, want %d", i, s.Target, cfg.MaxInsts)
		}
		prev = s
	}
	last := snaps[len(snaps)-1]
	if !last.Final {
		t.Fatal("last snapshot not marked Final")
	}
	if last.Retired != res.Counters.Retired || last.Cycle != res.Counters.Cycles {
		t.Errorf("final snapshot retired=%d cycle=%d, result retired=%d cycles=%d",
			last.Retired, last.Cycle, res.Counters.Retired, res.Counters.Cycles)
	}
	if last.IPC != res.IPC {
		t.Errorf("final snapshot IPC %v != result IPC %v", last.IPC, res.IPC)
	}
	if last.Interval != res.Intervals {
		t.Errorf("final snapshot interval %d != result intervals %d", last.Interval, res.Intervals)
	}
	if res.Partial {
		t.Error("completed run marked Partial")
	}
}

func TestRunContextBackgroundMatchesRun(t *testing.T) {
	cfg := fdpCfg("seqstream")
	cfg.MaxInsts = 60_000
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Counters != b.Counters {
		t.Errorf("counters diverge:\nRun:        %+v\nRunContext: %+v", a.Counters, b.Counters)
	}
	if a.IPC != b.IPC || a.Partial || b.Partial {
		t.Errorf("IPC %v vs %v, Partial %v/%v", a.IPC, b.IPC, a.Partial, b.Partial)
	}
}

func TestRunMultiContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var mc MultiConfig
	for _, w := range []string{"seqstream", "chaserand"} {
		cfg := fdpCfg(w)
		mc.Cores = append(mc.Cores, cfg)
	}
	mc.Cores[0].Progress = func(s Snapshot) { cancel() }

	res, err := RunMultiContext(ctx, mc)
	if !errors.Is(err, ErrCancelled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled multicore run: err = %v", err)
	}
	if !res.Partial {
		t.Error("multicore result not marked Partial")
	}
	for i, c := range res.Cores {
		if !c.Partial {
			t.Errorf("core %d not marked Partial", i)
		}
		if c.Counters.Retired >= mc.Cores[i].MaxInsts {
			t.Errorf("core %d retired %d, reached target despite cancellation", i, c.Counters.Retired)
		}
	}
}

func TestRunSMTContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	base := fdpCfg("seqstream")
	base.Progress = func(s Snapshot) { cancel() }
	smt := SMTConfig{Base: base, Workloads: []string{"seqstream", "chaserand"}}

	res, err := RunSMTContext(ctx, smt)
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("cancelled SMT run: err = %v", err)
	}
	if !res.Partial {
		t.Error("SMT result not marked Partial")
	}
}
