package sim

import (
	"errors"
	"fmt"

	"fdpsim/internal/workload"
)

// Sentinel errors. Callers branch on them with errors.Is; every error
// returned by the run entry points wraps exactly one of these (or a
// context error, for cancellation).
var (
	// ErrInvalidConfig wraps every Config.Validate failure.
	ErrInvalidConfig = errors.New("sim: invalid configuration")
	// ErrUnknownWorkload wraps a request for an unregistered workload
	// name. It is the workload package's sentinel re-exported so callers
	// need only this package.
	ErrUnknownWorkload = workload.ErrUnknown
	// ErrCancelled marks a run stopped early by its context (cancellation
	// or deadline). The concrete error is always a *CancelError, which
	// additionally unwraps to context.Canceled or context.DeadlineExceeded.
	ErrCancelled = errors.New("sim: run cancelled")
)

// CancelError reports a run that its context stopped before the retire
// target. The partial Result returned alongside it is valid up to the
// stop point. errors.Is matches both ErrCancelled and the context cause
// (context.Canceled or context.DeadlineExceeded).
type CancelError struct {
	// Cause is ctx.Err() at the moment the run observed cancellation.
	Cause error
	// Cycle is the cycle at which the run stopped (after draining).
	Cycle uint64
	// Retired is how many post-warmup instructions had retired.
	Retired uint64
	// Target is the post-warmup retire target the run was heading for.
	Target uint64
}

// Error implements error.
func (e *CancelError) Error() string {
	return fmt.Sprintf("sim: run cancelled at cycle %d (%d of %d instructions retired): %v",
		e.Cycle, e.Retired, e.Target, e.Cause)
}

// Unwrap exposes both the ErrCancelled sentinel and the context cause.
func (e *CancelError) Unwrap() []error { return []error{ErrCancelled, e.Cause} }
