package sim

import (
	"testing"

	"fdpsim/internal/core"
	"fdpsim/internal/prefetch"
	"fdpsim/internal/stats"
)

// collectTracer retains every event (test sink).
type collectTracer struct{ events []DecisionEvent }

func (t *collectTracer) TraceDecision(ev DecisionEvent) { t.events = append(t.events, ev) }

// noopTracer measures the cost of delivering events to a sink that does
// nothing, isolating the event-building overhead itself.
type noopTracer struct{ n uint64 }

func (t *noopTracer) TraceDecision(ev DecisionEvent) { t.n++ }

// boundaryHarness builds a hierarchy whose FDP engine closes one sampling
// interval per useful eviction, with the OnInterval hook wired the way
// runWith wires it (including the attribution interval sample when
// enabled). Driving OnEviction exercises the full interval-boundary path:
// Equation 1 rolls, Table 2 lookup, level/insertion update, record
// construction, sample assembly and tracer delivery.
func boundaryHarness(tr Tracer, attribution bool) *hierarchy {
	cfg := WithFDP(PrefStream)
	cfg.FDP.TInterval = 1
	cfg.Tracer = tr
	cfg.Attribution = attribution
	ctr := &stats.Counters{}
	h := newHierarchy(&cfg, ctr)
	h.fdp.OnInterval = func(rec core.IntervalRecord) {
		var sample stats.IntervalSample
		if h.attr != nil {
			sample = h.attrIntervalSample()
		}
		h.traceDecision(rec, 123, 456, sample)
	}
	return h
}

// TestTraceDecisionAllocs pins the hot-path contract: an interval boundary
// allocates nothing — with no tracer, with a delivering tracer, and with
// attribution sampling on (DecisionEvent and IntervalSample are
// stack-built and passed by value).
func TestTraceDecisionAllocs(t *testing.T) {
	for _, tc := range []struct {
		name string
		tr   Tracer
		attr bool
	}{
		{"nil-tracer", nil, false},
		{"noop-tracer", &noopTracer{}, false},
		{"noop-tracer-attribution", &noopTracer{}, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			h := boundaryHarness(tc.tr, tc.attr)
			var block uint64
			if got := testing.AllocsPerRun(1000, func() {
				block++
				h.fdp.OnEviction(block, true, true, false)
			}); got != 0 {
				t.Errorf("interval boundary allocated %.1f objects/op, want 0", got)
			}
		})
	}
}

// BenchmarkIntervalBoundary measures the interval-boundary cost with the
// tracer disabled and enabled; CI runs it with -benchtime=1x as a smoke
// test and the allocation report must stay at 0 allocs/op.
func BenchmarkIntervalBoundary(b *testing.B) {
	for _, tc := range []struct {
		name string
		tr   Tracer
		attr bool
	}{
		{"nil-tracer", nil, false},
		{"noop-tracer", &noopTracer{}, false},
		{"noop-tracer-attribution", &noopTracer{}, true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			h := boundaryHarness(tc.tr, tc.attr)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				h.fdp.OnEviction(uint64(i), true, true, false)
			}
		})
	}
}

// TestDecisionTraceMatchesResult runs a short FDP simulation with a
// collecting tracer and cross-checks the event stream against the run's
// aggregate Result: one event per closed interval, contiguous interval
// indices, a final DCC matching FinalLevel, and per-event invariants
// (metric ranges, Table 1 distance/degree consistency, valid Table 2 case).
func TestDecisionTraceMatchesResult(t *testing.T) {
	tr := &collectTracer{}
	cfg := WithFDP(PrefStream)
	cfg.Workload = "chaserand"
	cfg.MaxInsts = 150_000
	cfg.L2Blocks = 1024 // small L2 so useful evictions (and intervals) come fast
	cfg.FDP.TInterval = 64
	cfg.Tracer = tr

	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Intervals == 0 {
		t.Fatal("run closed no FDP intervals; shrink L2 or TInterval")
	}
	if got := uint64(len(tr.events)); got != res.Intervals {
		t.Fatalf("got %d decision events, want one per interval (%d)", got, res.Intervals)
	}
	last := tr.events[len(tr.events)-1]
	if last.DCCAfter != res.FinalLevel {
		t.Errorf("last event DCCAfter = %d, want Result.FinalLevel %d", last.DCCAfter, res.FinalLevel)
	}
	for i, ev := range tr.events {
		if ev.Interval != uint64(i+1) {
			t.Fatalf("event %d has interval %d, want %d", i, ev.Interval, i+1)
		}
		if ev.Case < 1 || ev.Case > 12 {
			t.Errorf("event %d: Table 2 case %d out of range", i, ev.Case)
		}
		for name, v := range map[string]float64{
			"accuracy": ev.Accuracy, "lateness": ev.Lateness, "pollution": ev.Pollution,
		} {
			if v < 0 || v > 1 {
				t.Errorf("event %d: %s = %g out of [0,1]", i, name, v)
			}
		}
		if d := ev.DCCAfter - ev.DCCBefore; d != int(core.Decrement) && d != int(core.NoChange) && d != int(core.Increment) {
			t.Errorf("event %d: DCC moved %d→%d (step %d)", i, ev.DCCBefore, ev.DCCAfter, d)
		}
		want := prefetch.StreamLevels[ev.DCCAfter]
		if ev.Distance != want.Distance || ev.Degree != want.Degree {
			t.Errorf("event %d: level %d gives (distance,degree)=(%d,%d), want Table 1 (%d,%d)",
				i, ev.DCCAfter, ev.Distance, ev.Degree, want.Distance, want.Degree)
		}
		switch ev.Insertion {
		case "MRU", "MID", "LRU-4", "LRU":
		default:
			t.Errorf("event %d: unexpected insertion %q", i, ev.Insertion)
		}
		if ev.Decayed.PrefUsed < ev.Raw.PrefUsed/2 && ev.Decayed.PrefUsed < ev.Raw.PrefUsed {
			t.Errorf("event %d: decayed used %d below raw %d fold", i, ev.Decayed.PrefUsed, ev.Raw.PrefUsed)
		}
	}
}

// TestTracerExcludedFromFingerprint keeps observation out of the cache
// key: the same configuration with and without a tracer must fingerprint
// identically.
func TestTracerExcludedFromFingerprint(t *testing.T) {
	cfg := WithFDP(PrefStream)
	fp1, ok1 := Fingerprint(cfg)
	cfg.Tracer = &noopTracer{}
	cfg.Progress = func(Snapshot) {}
	fp2, ok2 := Fingerprint(cfg)
	if !ok1 || !ok2 || fp1 != fp2 {
		t.Fatalf("fingerprint changed with tracer/progress installed: %q vs %q", fp1, fp2)
	}
}
