package sim

import (
	"fdpsim/internal/cache"
	"fdpsim/internal/mem"
	"fdpsim/internal/stats"
)

// attribution is the hierarchy-side state of the cycle-accounting and
// bandwidth-attribution layer (enabled by Config.Attribution). It is
// purely observational: every hook reads simulation state or records
// timestamps, and none of them feeds back into timing decisions, so
// enabling it cannot perturb results. All per-cycle work writes into
// fixed-size structures; the two maps are touched only on prefetch fills,
// uses, and evictions (cache-miss-rate frequency, not per cycle), and
// reuse deleted buckets, so the steady-state loop stays allocation-free.
type attribution struct {
	// cpu is written by the core each cycle (cpu.SetAttribution target);
	// cumulative since construction, including warmup.
	cpu stats.CycleBuckets

	// agg accumulates the whole-run histograms (occupancy, timeliness)
	// post-warmup; the cumulative-counter fields (Cycles, Bus*, Row*) are
	// filled at finalize from the baselines below.
	agg stats.Attribution

	// fillCycle records, per prefetched block, the cycle its fill
	// completed — consumed by the first demand use (fill-to-use latency)
	// or by eviction (unused prefetch). lateAt records, per late
	// prefetch, the cycle the demand merged into the in-flight request —
	// consumed by the fill (late-by latency).
	fillCycle map[cache.Addr]uint64
	lateAt    map[cache.Addr]uint64

	// Warmup baselines: cycle buckets and DRAM stats at the warmup reset,
	// subtracted at finalize so Attribution covers post-warmup work only.
	warmCycles stats.CycleBuckets
	warmMem    mem.Stats

	// Previous interval-boundary snapshots, for per-interval deltas.
	lastCycles stats.CycleBuckets
	lastMem    mem.Stats

	// Per-interval occupancy-sample accumulators (reset every boundary).
	mshrSum, queueSum, sampleCount uint64
}

func newAttribution() *attribution {
	return &attribution{
		fillCycle: make(map[cache.Addr]uint64),
		lateAt:    make(map[cache.Addr]uint64),
	}
}

// backpressured reports whether the memory system is refusing new demand
// work: demand accesses are parked awaiting replay, or the MSHR file is
// full. Used by the core to split load-miss stalls.
func (h *hierarchy) backpressured() bool {
	return h.pendingDemand.len() > 0 || h.mshr.Full()
}

// attrSampleCycle records the per-cycle occupancy samples (MSHR file and
// DRAM queue depths). Called from Tick when attribution is on.
func (h *hierarchy) attrSampleCycle() {
	a := h.attr
	mo := uint64(h.mshr.Used())
	qd := uint64(h.dram.QueueLen(mem.Demand))
	qp := uint64(h.dram.QueueLen(mem.Prefetch))
	qw := uint64(h.dram.QueueLen(mem.Writeback))
	a.agg.MSHROcc.Add(mo)
	a.agg.QueueDemand.Add(qd)
	a.agg.QueuePrefetch.Add(qp)
	a.agg.QueueWriteback.Add(qw)
	a.mshrSum += mo
	a.queueSum += qd + qp + qw
	a.sampleCount++
}

// attrPrefFilled records a prefetch fill completing at the current cycle
// (start of the block's fill-to-use clock). If the fill resolves a late
// prefetch — a demand merged while it was in flight — the late-by
// duration is recorded instead and the block yields no fill-to-use sample
// (the demand consumed it before it ever sat idle in the cache).
func (h *hierarchy) attrPrefFilled(block cache.Addr, stillPref bool) {
	a := h.attr
	if stillPref {
		a.fillCycle[block] = h.cyc
		return
	}
	if at, ok := a.lateAt[block]; ok {
		a.agg.LateBy.Add(h.cyc - at)
		delete(a.lateAt, block)
	}
}

// attrPrefLate records the cycle a demand merged into an in-flight
// prefetch (start of the late-by clock).
func (h *hierarchy) attrPrefLate(block cache.Addr) {
	h.attr.lateAt[block] = h.cyc
}

// attrPrefUsed records the first demand use of a prefetched block.
func (h *hierarchy) attrPrefUsed(block cache.Addr) {
	a := h.attr
	if fc, ok := a.fillCycle[block]; ok {
		a.agg.FillToUse.Add(h.cyc - fc)
		delete(a.fillCycle, block)
	}
}

// attrPrefEvicted records a prefetched block leaving the L2 or the
// prefetch cache without ever being used.
func (h *hierarchy) attrPrefEvicted(block cache.Addr) {
	a := h.attr
	if _, ok := a.fillCycle[block]; ok {
		delete(a.fillCycle, block)
		a.agg.PrefUnused++
	}
}

// attrWarmupReset snapshots the warm baselines at the end of the warmup
// phase and clears the post-warmup accumulators, mirroring the runner's
// Counters reset. The timeliness maps are kept: blocks prefetched during
// warmup may see their first use afterwards, and the recorded timestamps
// are absolute cycles, so the durations stay correct across the reset.
func (h *hierarchy) attrWarmupReset() {
	a := h.attr
	fillCycle, lateAt := a.fillCycle, a.lateAt
	*a = attribution{
		cpu:        a.cpu,
		fillCycle:  fillCycle,
		lateAt:     lateAt,
		warmCycles: a.cpu,
		warmMem:    h.dram.Stats(),
		lastCycles: a.cpu,
		lastMem:    h.dram.Stats(),
	}
}

// attrIntervalSample builds the attribution delta since the previous FDP
// interval boundary (or warmup reset) and advances the boundary
// snapshots. The interval's cycle count is the bucket-delta total — by
// construction the stall-cause buckets sum to it exactly.
func (h *hierarchy) attrIntervalSample() stats.IntervalSample {
	a := h.attr
	cur := a.cpu
	ms := h.dram.Stats()
	tr := h.dram.Config().Transfer
	s := stats.IntervalSample{
		Cycles:             cur.Sub(a.lastCycles),
		BusDemandCycles:    (ms.Started[mem.Demand] - a.lastMem.Started[mem.Demand]) * tr,
		BusPrefetchCycles:  (ms.Started[mem.Prefetch] - a.lastMem.Started[mem.Prefetch]) * tr,
		BusWritebackCycles: (ms.Started[mem.Writeback] - a.lastMem.Started[mem.Writeback]) * tr,
		RowHits:            ms.RowHits - a.lastMem.RowHits,
		RowMisses:          ms.RowMisses - a.lastMem.RowMisses,
	}
	if t := s.Cycles.Total(); t > 0 {
		s.BusUtilization = float64(s.BusOccupancy()) / float64(t)
	}
	if a.sampleCount > 0 {
		s.MSHRMean = float64(a.mshrSum) / float64(a.sampleCount)
		s.QueueMean = float64(a.queueSum) / float64(a.sampleCount)
	}
	a.lastCycles = cur
	a.lastMem = ms
	a.mshrSum, a.queueSum, a.sampleCount = 0, 0, 0
	return s
}

// attrFinalize materializes the whole-run Attribution block: the
// histograms accumulated since warmup plus the cumulative counters
// relative to the warm baselines. Returns nil when attribution is off.
func (h *hierarchy) attrFinalize() *stats.Attribution {
	a := h.attr
	if a == nil {
		return nil
	}
	out := a.agg
	out.Cycles = a.cpu.Sub(a.warmCycles)
	ms := h.dram.Stats()
	tr := h.dram.Config().Transfer
	out.BusDemandCycles = (ms.Started[mem.Demand] - a.warmMem.Started[mem.Demand]) * tr
	out.BusPrefetchCycles = (ms.Started[mem.Prefetch] - a.warmMem.Started[mem.Prefetch]) * tr
	out.BusWritebackCycles = (ms.Started[mem.Writeback] - a.warmMem.Started[mem.Writeback]) * tr
	out.RowHits = ms.RowHits - a.warmMem.RowHits
	out.RowMisses = ms.RowMisses - a.warmMem.RowMisses
	return &out
}
