package sim

import (
	"fmt"

	"fdpsim/internal/cpu"
	"fdpsim/internal/stats"
	"fdpsim/internal/workload"
)

// SMTConfig describes threads sharing one cache hierarchy — the "many
// threads sharing the same L2" setting of the paper's Section 4.3, which
// recommends reducing the pollution thresholds under such contention. All
// threads share the L2, MSHRs, prefetcher and one FDP engine (whose
// feedback then reflects the combined access stream); each thread has its
// own architectural core.
type SMTConfig struct {
	// Base carries the shared hierarchy, prefetcher and FDP parameters;
	// its Workload field is ignored.
	Base Config
	// Workloads names one workload per hardware thread.
	Workloads []string
}

// ThreadResult is one thread's outcome in an SMT run.
type ThreadResult struct {
	Workload string
	Retired  uint64
	// FinishCycle is when the thread hit the retire target; IPC is
	// computed against it.
	FinishCycle uint64
	IPC         float64
}

// SMTResult aggregates an SMT run. The cache-hierarchy counters are
// shared, so bandwidth and prefetch metrics are reported once.
type SMTResult struct {
	Threads  []ThreadResult
	Counters stats.Counters
	Cycles   uint64
	// BPKI is shared bus accesses per 1000 instructions summed over all
	// threads.
	BPKI       float64
	Accuracy   float64
	Pollution  float64
	FinalLevel int
}

// AggregateIPC returns the sum of per-thread IPCs.
func (r *SMTResult) AggregateIPC() float64 {
	var s float64
	for i := range r.Threads {
		s += r.Threads[i].IPC
	}
	return s
}

// offsetSource relocates a workload into a private address space.
type offsetSource struct {
	src  cpu.Source
	base uint64
}

// Name implements cpu.Source.
func (o *offsetSource) Name() string { return o.src.Name() }

// Next implements cpu.Source.
func (o *offsetSource) Next() cpu.MicroOp {
	op := o.src.Next()
	if op.Kind != cpu.Nop {
		op.Addr += o.base
	}
	if op.PC != 0 {
		op.PC += o.base
	}
	return op
}

// RunSMT executes threads over one shared hierarchy until every thread
// has retired Base.MaxInsts instructions. Threads that finish keep
// running (preserving contention); their IPC is fixed at the finish line.
// Base.WarmupInsts is not supported in this mode.
func RunSMT(cfg SMTConfig) (SMTResult, error) {
	if len(cfg.Workloads) == 0 {
		return SMTResult{}, fmt.Errorf("sim: SMT run needs at least one thread")
	}
	base := cfg.Base
	base.Workload = cfg.Workloads[0] // satisfy validation; sources are per-thread
	if err := base.Validate(); err != nil {
		return SMTResult{}, err
	}
	if base.WarmupInsts != 0 {
		return SMTResult{}, fmt.Errorf("sim: WarmupInsts is not supported in SMT mode")
	}

	var ctr stats.Counters
	h := newHierarchy(&base, &ctr)
	type thread struct {
		c      *cpu.CPU
		finish uint64
		done   bool
	}
	threads := make([]*thread, len(cfg.Workloads))
	res := SMTResult{}
	for i, w := range cfg.Workloads {
		src, err := workload.New(w, base.Seed+uint64(i))
		if err != nil {
			return SMTResult{}, err
		}
		// Each thread runs in its own address space: offset both data and
		// code addresses so co-running workloads contend for cache *space*
		// rather than aliasing each other's lines.
		spaced := &offsetSource{src: src, base: uint64(i) << 44}
		th := &thread{c: cpu.New(base.CPU, spaced, h.Access)}
		if base.ModelIFetch {
			th.c.SetFetch(h.Fetch)
		}
		threads[i] = th
		res.Threads = append(res.Threads, ThreadResult{Workload: w})
	}

	var cycle uint64
	remaining := len(threads)
	var lastSum, lastProgress uint64
	maxCycles := base.MaxInsts * 2000
	if maxCycles < 50_000_000 {
		maxCycles = 50_000_000
	}
	for remaining > 0 {
		cycle++
		h.Tick(cycle)
		var sum uint64
		for i, th := range threads {
			th.c.Tick()
			sum += th.c.Retired()
			if !th.done && th.c.Retired() >= base.MaxInsts {
				th.done = true
				th.finish = cycle
				res.Threads[i].Retired = th.c.Retired()
				res.Threads[i].FinishCycle = cycle
				res.Threads[i].IPC = float64(th.c.Retired()) / float64(cycle)
				remaining--
			}
		}
		if sum != lastSum {
			lastSum = sum
			lastProgress = cycle
		} else if cycle-lastProgress > 2_000_000 {
			return SMTResult{}, fmt.Errorf("sim: SMT run stalled at cycle %d", cycle)
		}
		if cycle > maxCycles {
			return SMTResult{}, fmt.Errorf("sim: SMT run exceeded cycle budget %d", maxCycles)
		}
	}

	var totalRetired uint64
	for _, th := range threads {
		totalRetired += th.c.Retired()
	}
	ctr.Retired = totalRetired
	ctr.Cycles = cycle
	res.Counters = ctr
	res.Cycles = cycle
	res.BPKI = ctr.BPKI()
	res.Accuracy = ctr.Accuracy()
	res.Pollution = ctr.Pollution()
	res.FinalLevel = h.fdp.Level()
	if h.pf != nil {
		res.FinalLevel = h.pf.Level()
	}
	return res, nil
}
