package sim

import (
	"context"
	"fmt"

	"fdpsim/internal/core"
	"fdpsim/internal/cpu"
	"fdpsim/internal/stats"
	"fdpsim/internal/workload"
)

// SMTConfig describes threads sharing one cache hierarchy — the "many
// threads sharing the same L2" setting of the paper's Section 4.3, which
// recommends reducing the pollution thresholds under such contention. All
// threads share the L2, MSHRs, prefetcher and one FDP engine (whose
// feedback then reflects the combined access stream); each thread has its
// own architectural core.
type SMTConfig struct {
	// Base carries the shared hierarchy, prefetcher and FDP parameters;
	// its Workload field is ignored.
	Base Config
	// Workloads names one workload per hardware thread.
	Workloads []string
	// Sources optionally provides one micro-op source per thread instead
	// of instantiating Workloads[i] by name; Workloads then only labels
	// the threads. When set, its length must equal len(Workloads) and the
	// sources are attached as-is — address-space disjointness is the
	// provider's concern (see RunSpecSMTContext).
	Sources []cpu.Source
}

// ThreadResult is one thread's outcome in an SMT run.
type ThreadResult struct {
	Workload string
	Retired  uint64
	// FinishCycle is when the thread hit the retire target; IPC is
	// computed against it.
	FinishCycle uint64
	IPC         float64
}

// SMTResult aggregates an SMT run. The cache-hierarchy counters are
// shared, so bandwidth and prefetch metrics are reported once.
type SMTResult struct {
	Threads  []ThreadResult
	Counters stats.Counters
	Cycles   uint64
	// BPKI is shared bus accesses per 1000 instructions summed over all
	// threads.
	BPKI       float64
	Accuracy   float64
	Pollution  float64
	FinalLevel int
	// Partial marks a cancelled run; threads that had not reached the
	// retire target carry an IPC measured at the stop cycle.
	Partial bool
}

// AggregateIPC returns the sum of per-thread IPCs.
func (r *SMTResult) AggregateIPC() float64 {
	var s float64
	for i := range r.Threads {
		s += r.Threads[i].IPC
	}
	return s
}

// offsetSource relocates a workload into a private address space.
type offsetSource struct {
	src  cpu.Source
	base uint64
}

// Name implements cpu.Source.
func (o *offsetSource) Name() string { return o.src.Name() }

// Next implements cpu.Source.
func (o *offsetSource) Next() cpu.MicroOp {
	op := o.src.Next()
	if op.Kind != cpu.Nop {
		op.Addr += o.base
	}
	if op.PC != 0 {
		op.PC += o.base
	}
	return op
}

// RunSMT executes threads over one shared hierarchy until every thread
// has retired Base.MaxInsts instructions. Threads that finish keep
// running (preserving contention); their IPC is fixed at the finish line.
// Base.WarmupInsts is not supported in this mode.
func RunSMT(cfg SMTConfig) (SMTResult, error) {
	return RunSMTContext(context.Background(), cfg)
}

// RunSMTContext is RunSMT under a context: cancellation and deadlines
// stop every thread at a retire boundary and return the partial SMTResult
// together with a *CancelError. Base.Progress streams the shared FDP
// engine's per-interval snapshots (whose feedback reflects the combined
// access stream of all threads).
func RunSMTContext(ctx context.Context, cfg SMTConfig) (SMTResult, error) {
	if len(cfg.Workloads) == 0 {
		return SMTResult{}, fmt.Errorf("%w: SMT run needs at least one thread", ErrInvalidConfig)
	}
	if cfg.Sources != nil && len(cfg.Sources) != len(cfg.Workloads) {
		return SMTResult{}, fmt.Errorf("%w: %d sources for %d threads", ErrInvalidConfig, len(cfg.Sources), len(cfg.Workloads))
	}
	base := cfg.Base
	base.Workload = cfg.Workloads[0] // satisfy validation; sources are per-thread
	if err := base.Validate(); err != nil {
		return SMTResult{}, err
	}
	if base.WarmupInsts != 0 {
		return SMTResult{}, fmt.Errorf("%w: WarmupInsts is not supported in SMT mode", ErrInvalidConfig)
	}

	var ctr stats.Counters
	h := newHierarchy(&base, &ctr)
	var cycle uint64
	if progress, tracer := base.Progress, base.Tracer; progress != nil || tracer != nil {
		h.fdp.OnInterval = func(rec core.IntervalRecord) {
			var sample stats.IntervalSample
			if h.attr != nil {
				sample = h.attrIntervalSample()
			}
			h.traceDecision(rec, cycle, 0, sample)
			if progress == nil {
				return
			}
			s := Snapshot{
				Cycle:     cycle,
				Target:    base.MaxInsts,
				Interval:  h.fdp.Intervals(),
				Accuracy:  rec.Accuracy,
				Lateness:  rec.Lateness,
				Pollution: rec.Pollution,
				Case:      rec.Case,
				Level:     rec.Level,
				Insertion: rec.Insertion,
			}
			if h.pf != nil {
				s.Level = h.pf.Level()
			}
			progress(s)
		}
	}
	type thread struct {
		c      *cpu.CPU
		finish uint64
		done   bool
	}
	threads := make([]*thread, len(cfg.Workloads))
	res := SMTResult{}
	for i, w := range cfg.Workloads {
		var spaced cpu.Source
		if cfg.Sources != nil {
			spaced = cfg.Sources[i]
		} else {
			src, err := workload.New(w, base.Seed+uint64(i))
			if err != nil {
				return SMTResult{}, err
			}
			// Each thread runs in its own address space: offset both data and
			// code addresses so co-running workloads contend for cache *space*
			// rather than aliasing each other's lines.
			spaced = &offsetSource{src: src, base: uint64(i) << 44}
		}
		th := &thread{c: h.attach(&base, spaced)}
		threads[i] = th
		res.Threads = append(res.Threads, ThreadResult{Workload: w})
	}

	collect := func(partial bool) SMTResult {
		var totalRetired uint64
		for _, th := range threads {
			totalRetired += th.c.Retired()
		}
		ctr.Retired = totalRetired
		ctr.Cycles = cycle
		res.Counters = ctr
		res.Cycles = cycle
		res.BPKI = ctr.BPKI()
		res.Accuracy = ctr.Accuracy()
		res.Pollution = ctr.Pollution()
		res.FinalLevel = h.fdp.Level()
		res.Partial = partial
		if h.pf != nil {
			res.FinalLevel = h.pf.Level()
		}
		return res
	}

	remaining := len(threads)
	var lastSum, lastProgress uint64
	maxCycles := base.MaxInsts * 2000
	if maxCycles < 50_000_000 {
		maxCycles = 50_000_000
	}
	cancellable := ctx.Done() != nil
	for remaining > 0 {
		cycle++
		h.Tick(cycle)
		var sum uint64
		for i, th := range threads {
			th.c.Tick()
			sum += th.c.Retired()
			if !th.done && th.c.Retired() >= base.MaxInsts {
				th.done = true
				th.finish = cycle
				res.Threads[i].Retired = th.c.Retired()
				res.Threads[i].FinishCycle = cycle
				res.Threads[i].IPC = float64(th.c.Retired()) / float64(cycle)
				remaining--
			}
		}
		if cancellable && cycle&(cancelCheckStride-1) == 0 {
			if err := ctx.Err(); err != nil {
				// Clean stop: halt dispatch on every thread, drain
				// in-flight instructions (bounded), then fix the
				// laggards' statistics at the stop cycle.
				for _, th := range threads {
					th.c.Halt()
				}
				for extra := 0; extra < drainBudget; extra++ {
					inFlight := 0
					for _, th := range threads {
						inFlight += th.c.InFlight()
					}
					if inFlight == 0 {
						break
					}
					cycle++
					h.Tick(cycle)
					for _, th := range threads {
						th.c.Tick()
					}
				}
				var retiredMax uint64
				for i, th := range threads {
					if th.done {
						continue
					}
					th.finish = cycle
					res.Threads[i].Retired = th.c.Retired()
					res.Threads[i].FinishCycle = cycle
					res.Threads[i].IPC = float64(th.c.Retired()) / float64(cycle)
					if th.c.Retired() > retiredMax {
						retiredMax = th.c.Retired()
					}
				}
				return collect(true), &CancelError{Cause: err, Cycle: cycle, Retired: retiredMax, Target: base.MaxInsts}
			}
		}
		if sum != lastSum {
			lastSum = sum
			lastProgress = cycle
		} else if cycle-lastProgress > 2_000_000 {
			return SMTResult{}, fmt.Errorf("sim: SMT run stalled at cycle %d", cycle)
		}
		if cycle > maxCycles {
			return SMTResult{}, fmt.Errorf("sim: SMT run exceeded cycle budget %d", maxCycles)
		}
	}

	return collect(false), nil
}
