package sim

import (
	"errors"
	"fmt"
	"testing"

	"fdpsim/internal/control"
)

func ctrlBase(workload, controller string) Config {
	cfg := WithFDP(PrefStream)
	cfg.Workload = workload
	cfg.MaxInsts = 20_000
	cfg.WarmupInsts = 5_000
	cfg.L1Blocks, cfg.L1Ways = 256, 4
	cfg.L1IBlocks, cfg.L1IWays = 256, 4
	cfg.L2Blocks, cfg.L2Ways = 1024, 16
	cfg.MSHRs = 32
	cfg.PrefQueueCap = 32
	cfg.FDP.TInterval = 64
	cfg.Controller = controller
	return cfg
}

// TestControllerFDPIdentity pins the seam end to end at the sim level:
// selecting "fdp" explicitly produces the same Result as the default
// empty controller, field for field (modulo wall clock and the
// Controller echo itself).
func TestControllerFDPIdentity(t *testing.T) {
	for _, wl := range []string{"seqstream", "mixedphase", "chaserand"} {
		def, err := Run(ctrlBase(wl, ""))
		if err != nil {
			t.Fatal(err)
		}
		fdp, err := Run(ctrlBase(wl, "fdp"))
		if err != nil {
			t.Fatal(err)
		}
		def.Elapsed, fdp.Elapsed = 0, 0
		def.Controller, fdp.Controller = "", ""
		if fmt.Sprintf("%+v", def) != fmt.Sprintf("%+v", fdp) {
			t.Errorf("%s: -controller fdp diverged from the default policy", wl)
		}
	}
}

// TestControllerRuns exercises every registered controller through a
// full simulation and checks basic invariants.
func TestControllerRuns(t *testing.T) {
	for _, info := range control.List() {
		cfg := ctrlBase("chaserand", info.Name)
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", info.Name, err)
		}
		if res.Controller != info.Name {
			t.Errorf("%s: Result.Controller = %q", info.Name, res.Controller)
		}
		if res.IPC <= 0 {
			t.Errorf("%s: IPC = %v", info.Name, res.IPC)
		}
		if res.FinalLevel < 1 || res.FinalLevel > 5 {
			t.Errorf("%s: FinalLevel = %d", info.Name, res.FinalLevel)
		}
	}
}

// TestControllerStaticPins checks that static-N holds the prefetcher at
// level N for the entire run.
func TestControllerStaticPins(t *testing.T) {
	for level := 1; level <= 5; level++ {
		cfg := ctrlBase("chaserand", fmt.Sprintf("static-%d", level))
		cfg.KeepFDPHistory = true
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Intervals == 0 {
			t.Fatalf("static-%d: no intervals closed", level)
		}
		for _, rec := range res.History {
			if rec.Level != level {
				t.Fatalf("static-%d: interval at level %d", level, rec.Level)
			}
		}
		if res.FinalLevel != level {
			t.Errorf("static-%d: FinalLevel = %d", level, res.FinalLevel)
		}
	}
}

// TestControllerSignalsFilled checks the sim layer's bandwidth
// enrichment reaches the decision records (chaserand is the small-cache
// workload that reliably closes sampling intervals at this run length).
func TestControllerSignalsFilled(t *testing.T) {
	cfg := ctrlBase("chaserand", "")
	cfg.KeepFDPHistory = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	saw := false
	for _, rec := range res.History {
		if rec.BusUtilization < 0 || rec.BusUtilization > 1 {
			t.Fatalf("BusUtilization %v out of [0,1]", rec.BusUtilization)
		}
		if rec.BusUtilization > 0 {
			saw = true
		}
	}
	if !saw {
		t.Error("no interval observed nonzero bus utilization on a streaming workload")
	}
}

func TestControllerValidate(t *testing.T) {
	cfg := ctrlBase("seqstream", "nope")
	if err := cfg.Validate(); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("unknown controller: %v, want ErrInvalidConfig", err)
	}
	cfg = ctrlBase("seqstream", "fdp")
	cfg.ControllerModel = []byte(`{}`)
	if err := cfg.Validate(); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("model without tree controller: %v, want ErrInvalidConfig", err)
	}
	cfg = ctrlBase("seqstream", "tree")
	cfg.ControllerModel = []byte(`{"version":1}`)
	if err := cfg.Validate(); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("malformed model: %v, want ErrInvalidConfig", err)
	}
	// Controller choice domain-separates fingerprints.
	a, ok := Fingerprint(ctrlBase("seqstream", ""))
	if !ok {
		t.Fatal("not fingerprintable")
	}
	b, _ := Fingerprint(ctrlBase("seqstream", "tree"))
	c, _ := Fingerprint(ctrlBase("seqstream", "dspatch-dual"))
	if a == b || a == c || b == c {
		t.Error("controller choice does not separate fingerprints")
	}
}
