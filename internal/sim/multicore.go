package sim

import (
	"context"
	"fmt"

	"fdpsim/internal/core"
	"fdpsim/internal/cpu"
	"fdpsim/internal/mem"
	"fdpsim/internal/stats"
	"fdpsim/internal/workload"
)

// MultiConfig describes a chip multiprocessor run: several cores, each
// with a private L1/L2, prefetcher and FDP engine, contending for one
// shared memory bus — the setting the paper's introduction argues makes
// bandwidth-efficient prefetching "more desirable and valuable in future
// processors". The shared DRAM takes its parameters from Cores[0].
type MultiConfig struct {
	Cores []Config
	// Sources optionally provides one micro-op source per core instead of
	// instantiating Cores[i].Workload by name. When set, its length must
	// equal len(Cores) and the sources are attached as-is — address-space
	// disjointness is the provider's concern (WorkloadSpec lanes give every
	// client a private window; see RunSpecMultiContext).
	Sources []cpu.Source
}

// CoreResult is one core's outcome within a multi-core run. Statistics
// are snapshotted the moment the core reaches its retire target, so later
// contention from still-running cores does not dilute them.
type CoreResult struct {
	Result
	// FinishCycle is the cycle at which the core hit its retire target
	// (or, for a Partial core, the cycle the run was cancelled).
	FinishCycle uint64
}

// MultiResult aggregates a multi-core run.
type MultiResult struct {
	Cores []CoreResult
	// Cycles is the cycle at which the last core finished.
	Cycles uint64
	// TotalBusAccesses counts all bus transactions over the full run.
	TotalBusAccesses uint64
	// Partial marks a cancelled run; cores that had not reached their
	// retire target carry Partial results snapshotted at the stop cycle.
	Partial bool
}

// AggregateIPC returns the sum of per-core IPCs (system throughput).
func (m *MultiResult) AggregateIPC() float64 {
	var s float64
	for i := range m.Cores {
		s += m.Cores[i].IPC
	}
	return s
}

// RunMulti executes a multi-core simulation. Every core runs until it has
// retired its MaxInsts; cores that finish early keep executing (so the
// bus contention seen by laggards stays realistic) but their statistics
// are frozen at the finish line.
func RunMulti(mc MultiConfig) (MultiResult, error) {
	return RunMultiContext(context.Background(), mc)
}

// RunMultiContext is RunMulti under a context: cancellation and deadlines
// stop all cores at a retire boundary and return the partial MultiResult
// together with a *CancelError. Each core's Config.Progress streams that
// core's per-interval snapshots (Snapshot.Core identifies the emitter).
func RunMultiContext(ctx context.Context, mc MultiConfig) (MultiResult, error) {
	n := len(mc.Cores)
	if n == 0 {
		return MultiResult{}, fmt.Errorf("%w: multi-core run needs at least one core", ErrInvalidConfig)
	}
	if mc.Sources != nil && len(mc.Sources) != n {
		return MultiResult{}, fmt.Errorf("%w: %d sources for %d cores", ErrInvalidConfig, len(mc.Sources), n)
	}
	for i := range mc.Cores {
		if err := mc.Cores[i].Validate(); err != nil {
			return MultiResult{}, fmt.Errorf("core %d: %w", i, err)
		}
	}

	dram := mem.New(mc.Cores[0].DRAM)
	type coreState struct {
		cfg    *Config
		h      *hierarchy
		cpu    *cpu.CPU
		ctr    *stats.Counters
		snap   stats.Counters // counters at the finish line
		finish uint64
		done   bool
		// Warmup bookkeeping (statistics before the warmup target are
		// discarded; microarchitectural state is kept).
		warmed      bool
		warmCycle   uint64
		warmRetired uint64
		warmLoads   uint64
		warmStores  uint64
	}
	var cycle uint64
	cores := make([]*coreState, n)
	for i := range mc.Cores {
		cfg := mc.Cores[i] // copy
		var spaced cpu.Source
		if mc.Sources != nil {
			spaced = mc.Sources[i]
		} else {
			src, err := workload.New(cfg.Workload, cfg.Seed+uint64(i))
			if err != nil {
				return MultiResult{}, err
			}
			// Give each core a private address space so co-running workloads
			// interact only through shared-resource contention.
			spaced = &offsetSource{src: src, base: uint64(i) << 44}
		}
		st := &coreState{cfg: &cfg, ctr: &stats.Counters{}}
		st.h = newHierarchyShared(&cfg, st.ctr, dram, i)
		st.cpu = st.h.attach(&cfg, spaced)
		cores[i] = st
		if progress, tracer := cfg.Progress, cfg.Tracer; progress != nil || tracer != nil {
			st := st
			coreID := i
			st.h.fdp.OnInterval = func(rec core.IntervalRecord) {
				var pcyc, pret uint64
				if st.warmed {
					pcyc = cycle - st.warmCycle
					pret = st.cpu.Retired() - st.warmRetired
				}
				var sample stats.IntervalSample
				if st.h.attr != nil && st.warmed {
					sample = st.h.attrIntervalSample()
				}
				st.h.traceDecision(rec, pcyc, pret, sample)
				if progress == nil {
					return
				}
				s := Snapshot{
					Core:      coreID,
					Cycle:     pcyc,
					Retired:   pret,
					Target:    st.cfg.MaxInsts,
					Interval:  st.h.fdp.Intervals(),
					Accuracy:  rec.Accuracy,
					Lateness:  rec.Lateness,
					Pollution: rec.Pollution,
					Case:      rec.Case,
					Level:     rec.Level,
					Insertion: rec.Insertion,
					Sample:    sample,
				}
				if pcyc > 0 {
					s.IPC = float64(pret) / float64(pcyc)
				}
				if pret > 0 {
					s.BPKI = 1000 * float64(st.ctr.BusAccesses()) / float64(pret)
				}
				if st.h.pf != nil {
					s.Level = st.h.pf.Level()
				}
				progress(s)
			}
		}
	}
	// The shared bus dispatches start events to the owning core.
	dram.OnStart = func(r *mem.Request) {
		if r.Owner >= 0 && r.Owner < n {
			cores[r.Owner].h.onBusStart(r)
		}
	}

	// freeze snapshots a core's statistics at the current cycle — at its
	// finish line, or at the stop cycle on cancellation.
	freeze := func(st *coreState) {
		st.finish = cycle
		st.snap = *st.ctr
		st.snap.Cycles = cycle - st.warmCycle
		st.snap.Retired = st.cpu.Retired() - st.warmRetired
		st.snap.RetiredLoads = st.cpu.RetiredLoads() - st.warmLoads
		st.snap.RetiredStores = st.cpu.RetiredStores() - st.warmStores
		st.snap.Intervals = st.h.fdp.Intervals()
	}

	collect := func(partial bool) MultiResult {
		res := MultiResult{Cycles: cycle, Partial: partial}
		for _, st := range cores {
			ctr := st.snap
			cr := CoreResult{
				Result: Result{
					Workload:   st.cfg.Workload,
					Prefetcher: string(st.cfg.Prefetcher),
					Level:      st.cfg.StaticLevel,
					Counters:   ctr,
					IPC:        ctr.IPC(),
					BPKI:       ctr.BPKI(),
					Accuracy:   ctr.Accuracy(),
					Lateness:   ctr.Lateness(),
					Pollution:  ctr.Pollution(),
					LevelDist:  st.h.fdp.LevelDist,
					InsertDist: st.h.fdp.InsertDist,
					Intervals:  ctr.Intervals,
					FinalLevel: st.h.fdp.Level(),
					Partial:    !st.done,
				},
				FinishCycle: st.finish,
			}
			if st.h.pf != nil {
				cr.FinalLevel = st.h.pf.Level()
			}
			// Cycle accounting and prefetch timeliness are per-core; the
			// bus/queue/row telemetry inside reflects the shared DRAM, so
			// every core reports the same chip-wide memory pressure.
			cr.Attribution = st.h.attrFinalize()
			res.Cores = append(res.Cores, cr)
			res.TotalBusAccesses += st.ctr.BusAccesses()
		}
		return res
	}

	remaining := n
	var lastProgress uint64
	var lastRetiredSum uint64
	maxCycles := uint64(0)
	for _, st := range cores {
		c := (st.cfg.MaxInsts + st.cfg.WarmupInsts) * 1000
		if c > maxCycles {
			maxCycles = c
		}
	}
	if maxCycles < 50_000_000 {
		maxCycles = 50_000_000
	}

	cancellable := ctx.Done() != nil
	var retiredMax uint64
	for remaining > 0 {
		cycle++
		dram.Tick(cycle)
		var retiredSum uint64
		for _, st := range cores {
			st.h.Tick(cycle)
			st.cpu.Tick()
			retiredSum += st.cpu.Retired()
			if !st.warmed && st.cpu.Retired() >= st.cfg.WarmupInsts {
				st.warmed = true
				st.warmCycle = cycle
				st.warmRetired = st.cpu.Retired()
				st.warmLoads = st.cpu.RetiredLoads()
				st.warmStores = st.cpu.RetiredStores()
				*st.ctr = stats.Counters{}
				if st.h.attr != nil {
					st.h.attrWarmupReset()
				}
			}
			if !st.done && st.warmed && st.cpu.Retired() >= st.cfg.WarmupInsts+st.cfg.MaxInsts {
				st.done = true
				freeze(st)
				remaining--
			}
		}
		if cancellable && cycle&(cancelCheckStride-1) == 0 {
			if err := ctx.Err(); err != nil {
				// Clean stop: halt every core's dispatch, drain in-flight
				// instructions (bounded), then freeze the laggards.
				for _, st := range cores {
					st.cpu.Halt()
				}
				for extra := 0; extra < drainBudget; extra++ {
					inFlight := 0
					for _, st := range cores {
						inFlight += st.cpu.InFlight()
					}
					if inFlight == 0 {
						break
					}
					cycle++
					dram.Tick(cycle)
					for _, st := range cores {
						st.h.Tick(cycle)
						st.cpu.Tick()
					}
				}
				for _, st := range cores {
					if !st.done {
						freeze(st)
						if st.cpu.Retired() > retiredMax {
							retiredMax = st.cpu.Retired()
						}
					}
				}
				return collect(true), &CancelError{Cause: err, Cycle: cycle, Retired: retiredMax, Target: mc.Cores[0].MaxInsts}
			}
		}
		if retiredSum != lastRetiredSum {
			lastRetiredSum = retiredSum
			lastProgress = cycle
		} else if cycle-lastProgress > 2_000_000 {
			return MultiResult{}, fmt.Errorf("sim: multi-core run stalled at cycle %d", cycle)
		}
		if cycle > maxCycles {
			return MultiResult{}, fmt.Errorf("sim: multi-core run exceeded cycle budget %d", maxCycles)
		}
	}

	return collect(false), nil
}
