package sim

import (
	"testing"

	"fdpsim/internal/mem"
	"fdpsim/internal/stats"
)

// attrTestConfig is a short FDP run sized so intervals close fast (small
// L2, tight TInterval) with attribution enabled.
func attrTestConfig() Config {
	cfg := WithFDP(PrefStream)
	cfg.Workload = "chaserand"
	cfg.MaxInsts = 150_000
	cfg.L2Blocks = 1024
	cfg.FDP.TInterval = 64
	cfg.Attribution = true
	return cfg
}

// TestAttributionConsistency cross-checks the whole-run Attribution block
// and the per-interval trace samples against the independently maintained
// Counters and DRAM statistics: the stall-cause buckets must sum to the
// exact cycle count, bus-occupancy cycles must equal bus transactions
// times the transfer time, row-buffer outcomes must match the DRAM model,
// the occupancy histograms must hold one sample per cycle, and the
// interval deltas must sum to (a prefix of) the whole-run totals.
func TestAttributionConsistency(t *testing.T) {
	tr := &collectTracer{}
	cfg := attrTestConfig()
	cfg.Tracer = tr

	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	a := res.Attribution
	if a == nil {
		t.Fatal("Config.Attribution set but Result.Attribution is nil")
	}
	if res.Intervals == 0 || len(tr.events) == 0 {
		t.Fatal("run closed no FDP intervals")
	}

	if got, want := a.Cycles.Total(), res.Counters.Cycles; got != want {
		t.Errorf("stall-cause buckets sum to %d cycles, want exactly Counters.Cycles = %d", got, want)
	}
	if a.Cycles.RetireFull+a.Cycles.RetirePartial == 0 {
		t.Error("no retire cycles classified")
	}

	transfer := mem.DefaultConfig().Transfer
	busWant := [3]uint64{
		res.DRAM.Started[mem.Demand] * transfer,
		res.DRAM.Started[mem.Prefetch] * transfer,
		res.DRAM.Started[mem.Writeback] * transfer,
	}
	busGot := [3]uint64{a.BusDemandCycles, a.BusPrefetchCycles, a.BusWritebackCycles}
	if busGot != busWant {
		t.Errorf("bus occupancy cycles = %v, want Started×Transfer = %v", busGot, busWant)
	}
	if a.RowHits != res.DRAM.RowHits || a.RowMisses != res.DRAM.RowMisses {
		t.Errorf("row outcomes (%d,%d) disagree with DRAM stats (%d,%d)",
			a.RowHits, a.RowMisses, res.DRAM.RowHits, res.DRAM.RowMisses)
	}
	if a.BusUtilization() <= 0 || a.BusUtilization() > 2 {
		t.Errorf("implausible bus utilization %g", a.BusUtilization())
	}

	// One occupancy sample per post-warmup cycle.
	for name, h := range map[string]*stats.LogHist{
		"MSHROcc": &a.MSHROcc, "QueueDemand": &a.QueueDemand,
		"QueuePrefetch": &a.QueuePrefetch, "QueueWriteback": &a.QueueWriteback,
	} {
		if got := h.Total(); got != res.Counters.Cycles {
			t.Errorf("%s holds %d samples, want one per cycle (%d)", name, got, res.Counters.Cycles)
		}
	}

	// Timeliness: every fill-to-use sample is a used prefetch, every
	// late-by sample a late one.
	if got := a.FillToUse.Total(); got > res.Counters.PrefUsed {
		t.Errorf("FillToUse holds %d samples, more than PrefUsed %d", got, res.Counters.PrefUsed)
	}
	if got := a.LateBy.Total(); got > res.Counters.PrefLate {
		t.Errorf("LateBy holds %d samples, more than PrefLate %d", got, res.Counters.PrefLate)
	}
	if a.FillToUse.Total() == 0 {
		t.Error("no fill-to-use samples recorded on a prefetch-heavy run")
	}

	// Interval samples telescope: their sums form a prefix of the run
	// totals (cycles after the last boundary belong to no interval).
	var sum stats.IntervalSample
	for i, ev := range tr.events {
		if ev.Sample.Cycles.Total() == 0 {
			t.Fatalf("event %d carries an empty attribution sample", i)
		}
		sum.Cycles.RetireFull += ev.Sample.Cycles.RetireFull
		sum.Cycles.RetirePartial += ev.Sample.Cycles.RetirePartial
		sum.Cycles.StallLoadMiss += ev.Sample.Cycles.StallLoadMiss
		sum.Cycles.StallROBFull += ev.Sample.Cycles.StallROBFull
		sum.Cycles.StallDRAMBP += ev.Sample.Cycles.StallDRAMBP
		sum.Cycles.StallIFetch += ev.Sample.Cycles.StallIFetch
		sum.Cycles.StallFrontend += ev.Sample.Cycles.StallFrontend
		sum.BusDemandCycles += ev.Sample.BusDemandCycles
		sum.BusPrefetchCycles += ev.Sample.BusPrefetchCycles
		sum.BusWritebackCycles += ev.Sample.BusWritebackCycles
		sum.RowHits += ev.Sample.RowHits
		sum.RowMisses += ev.Sample.RowMisses
	}
	if got, max := sum.Cycles.Total(), a.Cycles.Total(); got > max {
		t.Errorf("interval cycle deltas sum to %d, exceeding the run total %d", got, max)
	}
	per := map[string][2]uint64{
		"RetireFull":    {sum.Cycles.RetireFull, a.Cycles.RetireFull},
		"RetirePartial": {sum.Cycles.RetirePartial, a.Cycles.RetirePartial},
		"StallLoadMiss": {sum.Cycles.StallLoadMiss, a.Cycles.StallLoadMiss},
		"StallROBFull":  {sum.Cycles.StallROBFull, a.Cycles.StallROBFull},
		"StallDRAMBP":   {sum.Cycles.StallDRAMBP, a.Cycles.StallDRAMBP},
		"StallIFetch":   {sum.Cycles.StallIFetch, a.Cycles.StallIFetch},
		"StallFrontend": {sum.Cycles.StallFrontend, a.Cycles.StallFrontend},
		"BusDemand":     {sum.BusDemandCycles, a.BusDemandCycles},
		"BusPrefetch":   {sum.BusPrefetchCycles, a.BusPrefetchCycles},
		"BusWriteback":  {sum.BusWritebackCycles, a.BusWritebackCycles},
		"RowHits":       {sum.RowHits, a.RowHits},
		"RowMisses":     {sum.RowMisses, a.RowMisses},
	}
	for name, v := range per {
		if v[0] > v[1] {
			t.Errorf("%s: interval sum %d exceeds run total %d", name, v[0], v[1])
		}
	}
}

// TestAttributionSnapshotSample checks the Progress path carries the same
// per-interval samples as the tracer, plus a live BPKI.
func TestAttributionSnapshotSample(t *testing.T) {
	tr := &collectTracer{}
	cfg := attrTestConfig()
	cfg.Tracer = tr
	var snaps []Snapshot
	cfg.Progress = func(s Snapshot) { snaps = append(snaps, s) }

	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(snaps) != len(tr.events)+1 { // one per interval plus the Final
		t.Fatalf("got %d snapshots for %d events", len(snaps), len(tr.events))
	}
	for i, ev := range tr.events {
		if snaps[i].Sample != ev.Sample {
			t.Fatalf("snapshot %d sample disagrees with trace event", i)
		}
	}
	final := snaps[len(snaps)-1]
	if !final.Final {
		t.Fatal("last snapshot not Final")
	}
	if final.BPKI != res.BPKI {
		t.Errorf("final snapshot BPKI = %g, want Result.BPKI %g", final.BPKI, res.BPKI)
	}
	if last := snaps[len(snaps)-2]; last.BPKI <= 0 {
		t.Error("interval snapshots carry no live BPKI")
	}
}

// TestAttributionWarmup checks the warmup reset: with WarmupInsts set the
// buckets must still sum to the post-warmup Counters.Cycles exactly, and
// the bus/row totals must cover post-warmup traffic only.
func TestAttributionWarmup(t *testing.T) {
	cfg := attrTestConfig()
	cfg.WarmupInsts = 50_000
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	a := res.Attribution
	if a == nil {
		t.Fatal("Result.Attribution missing")
	}
	if got, want := a.Cycles.Total(), res.Counters.Cycles; got != want {
		t.Errorf("post-warmup buckets sum to %d, want %d", got, want)
	}
	transfer := mem.DefaultConfig().Transfer
	// res.DRAM is cumulative (includes warmup), so the attribution bus
	// cycles must be strictly less than the lifetime totals.
	if whole := res.DRAM.Started[mem.Demand] * transfer; a.BusDemandCycles >= whole {
		t.Errorf("post-warmup demand bus cycles %d not below lifetime %d", a.BusDemandCycles, whole)
	}
	if got := a.MSHROcc.Total(); got != res.Counters.Cycles {
		t.Errorf("MSHR histogram holds %d samples, want post-warmup cycles %d", got, res.Counters.Cycles)
	}
}

// TestAttributionDoesNotPerturb pins the acceptance contract: enabling
// attribution changes no simulation outcome — counters, DRAM statistics
// and derived metrics are bit-identical with it on and off.
func TestAttributionDoesNotPerturb(t *testing.T) {
	for _, wl := range []string{"chaserand", "mixedphase"} {
		t.Run(wl, func(t *testing.T) {
			cfg := attrTestConfig()
			cfg.Workload = wl
			cfg.Attribution = false
			off, err := Run(cfg)
			if err != nil {
				t.Fatalf("Run (off): %v", err)
			}
			cfg.Attribution = true
			on, err := Run(cfg)
			if err != nil {
				t.Fatalf("Run (on): %v", err)
			}
			if off.Attribution != nil {
				t.Error("attribution off but Result.Attribution set")
			}
			if on.Attribution == nil {
				t.Error("attribution on but Result.Attribution nil")
			}
			if off.Counters != on.Counters {
				t.Errorf("Counters differ:\noff: %+v\non:  %+v", off.Counters, on.Counters)
			}
			if off.DRAM != on.DRAM {
				t.Errorf("DRAM stats differ:\noff: %+v\non:  %+v", off.DRAM, on.DRAM)
			}
			if off.IPC != on.IPC || off.BPKI != on.BPKI || off.FinalLevel != on.FinalLevel {
				t.Errorf("derived metrics differ: IPC %g/%g BPKI %g/%g level %d/%d",
					off.IPC, on.IPC, off.BPKI, on.BPKI, off.FinalLevel, on.FinalLevel)
			}
		})
	}
}
