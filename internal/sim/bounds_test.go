package sim

import (
	"math"
	"testing"
)

// Analytical cross-validation: the simulator's steady-state throughput on
// regular workloads must agree with closed-form bounds derived from the
// machine parameters. These tests catch silent timing-model regressions
// that unit tests on individual components cannot.

// seqstream geometry: 8 loads per 64 B block, 3 nops per load.
const (
	seqInstsPerBlock = 32.0
)

func runBound(t *testing.T, cfg Config) Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestBusBoundWithPrefetching: with a perfectly accurate, very aggressive
// prefetcher, seqstream is limited by the data bus: one block per
// Transfer cycles, i.e. IPC -> instsPerBlock/Transfer.
func TestBusBoundWithPrefetching(t *testing.T) {
	cfg := Conventional(PrefStream, 5)
	cfg.Workload = "seqstream"
	cfg.MaxInsts = 400_000
	res := runBound(t, cfg)
	bound := seqInstsPerBlock / float64(cfg.DRAM.Transfer)
	if res.IPC > bound*1.02 {
		t.Fatalf("IPC %.4f exceeds the bus bound %.4f", res.IPC, bound)
	}
	if res.IPC < bound*0.90 {
		t.Fatalf("IPC %.4f more than 10%% below the bus bound %.4f — bandwidth underutilized", res.IPC, bound)
	}
}

// TestLatencyBoundWithoutPrefetching: without a prefetcher, seqstream is
// limited by ROB-bounded memory-level parallelism: the 128-entry window
// holds 4 blocks of work, so one block completes per minLatency/4 cycles.
func TestLatencyBoundWithoutPrefetching(t *testing.T) {
	cfg := Default()
	cfg.Workload = "seqstream"
	cfg.MaxInsts = 400_000
	res := runBound(t, cfg)
	minLatency := float64(cfg.DRAM.CmdLatency + cfg.DRAM.RowHit + cfg.DRAM.Transfer + cfg.L2Latency)
	mlp := float64(cfg.CPU.ROB) / seqInstsPerBlock
	bound := seqInstsPerBlock / (minLatency / mlp)
	if res.IPC > bound*1.10 {
		t.Fatalf("IPC %.4f exceeds the MLP-latency bound %.4f", res.IPC, bound)
	}
	if res.IPC < bound*0.75 {
		t.Fatalf("IPC %.4f far below the MLP-latency bound %.4f", res.IPC, bound)
	}
}

// TestRetireWidthBound: a cache-resident loop cannot exceed the retire
// width, and must come close to it.
func TestRetireWidthBound(t *testing.T) {
	cfg := Default()
	cfg.Workload = "tinyloop"
	cfg.MaxInsts = 200_000
	res := runBound(t, cfg)
	width := float64(cfg.CPU.Width)
	if res.IPC > width {
		t.Fatalf("IPC %.3f exceeds the retire width %v", res.IPC, width)
	}
	if res.IPC < width*0.5 {
		t.Fatalf("IPC %.3f below half the retire width on an L1-resident loop", res.IPC)
	}
}

// TestSerialChaseLatencyBound: chaseseq without prefetching is one
// dependent block per round trip: IPC = instsPerHop / minLatency, within
// modeling slack.
func TestSerialChaseLatencyBound(t *testing.T) {
	cfg := Default()
	cfg.Workload = "chaseseq"
	cfg.MaxInsts = 100_000
	res := runBound(t, cfg)
	minLatency := float64(cfg.DRAM.CmdLatency + cfg.DRAM.RowHit + cfg.DRAM.Transfer + cfg.L2Latency)
	const instsPerHop = 16.0
	bound := instsPerHop / minLatency
	if ratio := res.IPC / bound; ratio < 0.80 || ratio > 1.25 {
		t.Fatalf("serial chase IPC %.4f vs bound %.4f (ratio %.2f)", res.IPC, bound, ratio)
	}
}

// TestBPKIMatchesGeometry: seqstream touches one new block per 32
// instructions, so BPKI must be ~1000/32 regardless of prefetching (all
// blocks are eventually demanded exactly once).
func TestBPKIMatchesGeometry(t *testing.T) {
	for _, pf := range []PrefetcherKind{PrefNone, PrefStream} {
		cfg := Default()
		if pf != PrefNone {
			cfg = Conventional(pf, 5)
		}
		cfg.Workload = "seqstream"
		cfg.MaxInsts = 400_000
		res := runBound(t, cfg)
		want := 1000 / seqInstsPerBlock
		if math.Abs(res.BPKI-want) > want*0.05 {
			t.Fatalf("%s BPKI %.2f, want ~%.2f", pf, res.BPKI, want)
		}
	}
}

// TestBandwidthConservation: bus reads + prefetches must equal L2 fills
// from memory (every transaction delivers exactly one block).
func TestBandwidthConservation(t *testing.T) {
	cfg := Conventional(PrefStream, 5)
	cfg.Workload = "mixedphase"
	cfg.MaxInsts = 200_000
	res := runBound(t, cfg)
	c := res.Counters
	fills := c.L2DemandMisses + c.PrefetchFilled // misses fill on return; timely prefetch fills
	transactions := c.BusReads + c.BusPrefetches
	// Fills can trail transactions by in-flight requests at the cutoff.
	if transactions > fills+uint64(cfg.MSHRs) {
		t.Fatalf("bus transactions %d vs fills %d: more than an MSHR file of slack", transactions, fills)
	}
	if fills > transactions+uint64(cfg.MSHRs) {
		t.Fatalf("fills %d exceed transactions %d", fills, transactions)
	}
}

// TestHalfBandwidthHalvesStreamIPC: doubling Transfer must halve
// bus-bound throughput, confirming the bandwidth knob is live.
func TestHalfBandwidthHalvesStreamIPC(t *testing.T) {
	base := Conventional(PrefStream, 5)
	base.Workload = "seqstream"
	base.MaxInsts = 300_000
	full := runBound(t, base)
	half := base
	half.DRAM.Transfer *= 2
	halved := runBound(t, half)
	ratio := halved.IPC / full.IPC
	if ratio < 0.45 || ratio > 0.58 {
		t.Fatalf("half-bandwidth IPC ratio %.2f, want ~0.5", ratio)
	}
}

// TestDoubledLatencyScalesNoPrefetchIPC: with prefetching off and an
// MLP-limited stream, IPC is inversely proportional to memory latency.
func TestDoubledLatencyScalesNoPrefetchIPC(t *testing.T) {
	base := Default()
	base.Workload = "seqstream"
	base.MaxInsts = 300_000
	r1 := runBound(t, base)
	slow := base
	slow.DRAM.RowHit *= 2
	slow.DRAM.RowConflict *= 2
	r2 := runBound(t, slow)
	ratio := r2.IPC / r1.IPC
	// Latency roughly doubles (command/transfer components stay fixed).
	if ratio < 0.45 || ratio > 0.70 {
		t.Fatalf("doubled-latency IPC ratio %.2f, want ~0.55", ratio)
	}
}
