package sim

import (
	"fdpsim/internal/cache"
	"fdpsim/internal/control"
	"fdpsim/internal/core"
	"fdpsim/internal/cpu"
	"fdpsim/internal/mem"
	"fdpsim/internal/prefetch"
	"fdpsim/internal/stats"
)

// memClient consumes completion events from the hierarchy: a CPU (or a
// test fake) registered with attach/addClient. Events carry the client id,
// so several cores or SMT threads can share one hierarchy.
type memClient interface {
	// CompleteLoad delivers the data for the load occupying ROB slot
	// robIdx with load sequence number seq.
	CompleteLoad(robIdx int32, seq uint64)
	// CompleteFetch unblocks instruction dispatch after a fetch miss.
	CompleteFetch()
}

// l1Miss tracks one outstanding L1-level miss so that same-block requests
// merge. A block may be wanted by the data side, the instruction-fetch
// side, or both (self-modifying-code layouts aside, "both" only happens
// when a workload reads its own code region). Waiters are pooled event
// nodes; entries themselves live in a slab indexed by the l1Misses map.
type l1Miss struct {
	waiters      evList // evLoadDone nodes, FIFO
	fetchWaiters evList // evFetchDone nodes, FIFO
	anyStore     bool
	wantData     bool
	wantFetch    bool
}

// demandRetry is one structurally-stalled demand access awaiting replay.
type demandRetry struct {
	block cache.Addr
	pc    uint64
}

// hierarchy is the two-level cache hierarchy plus prefetcher, FDP engine,
// queues and DRAM of the baseline processor. CPUs attach via attach (or
// addClient) and submit accesses through Access/Fetch; the runner calls
// Tick once per cycle before the CPUs tick. All per-access bookkeeping —
// completion continuations, miss merging, queue entries, DRAM requests,
// the prefetcher notification — is drawn from pools and scratch owned
// here, so the steady-state simulation loop performs no heap allocation.
type hierarchy struct {
	cfg      *Config
	cyc      uint64
	coreID   int
	ownsDRAM bool
	ctr      *stats.Counters
	l1       *cache.Cache
	l1i      *cache.Cache // nil when instruction fetch is not modeled
	l2       *cache.Cache
	mshr     *cache.MSHRFile
	dram     *mem.DRAM
	pf       prefetch.Prefetcher
	fdp      *core.FDP
	pc       *cache.Cache // optional prefetch cache
	pool     *eventPool
	wh       *wheel

	clients []memClient

	// Outstanding L1 misses: slab + free list, addressed by block.
	l1Misses map[cache.Addr]int32
	missSlab []l1Miss
	missFree []int32

	prefQ    ring[cache.Addr]    // Prefetch Request Queue
	prefQSet map[cache.Addr]bool // membership filter for the queue

	// pendingDemand holds demand L2 accesses stalled on a full MSHR file
	// or bus queue; retried in order each cycle.
	pendingDemand ring[demandRetry]
	// pendingWB holds writebacks stalled on a full writeback queue.
	pendingWB ring[cache.Addr]

	// onFillFn is the one method value handed to every DRAM read request
	// (binding it per request would allocate).
	onFillFn func(*mem.Request)

	// pfEv and pfOut are the reusable prefetcher-notification event and
	// output scratch; see prefetch.Prefetcher's Observe contract.
	pfEv  prefetch.Event
	pfOut []uint64

	// attr holds the cycle-accounting / bandwidth-attribution state when
	// Config.Attribution is set; nil otherwise (one branch per hook site).
	attr *attribution

	// controller is the injected feedback policy (nil = the engine's
	// built-in paper policy); ctrlName is its registry name, precomputed
	// for allocation-free tracing.
	controller control.Controller
	ctrlName   string

	// sigLastCycle/sigLastStats are the previous interval boundary's
	// clock and bus counters; fillSignals diffs against them to give the
	// controller per-interval bandwidth observables.
	sigLastCycle uint64
	sigLastStats mem.Stats
}

func newHierarchy(cfg *Config, ctr *stats.Counters) *hierarchy {
	h := newHierarchyShared(cfg, ctr, mem.New(cfg.DRAM), 0)
	h.ownsDRAM = true
	h.dram.OnStart = h.onBusStart
	return h
}

// fillSignals enriches a Signals value with the bandwidth observables
// the core engine cannot measure itself: the interval's span in cycles
// and the data-bus occupancy over it (total and prefetch-only),
// reconstructed from the DRAM's started-transfer counters. Installed as
// the FDP engine's OnSignals hook; called once per interval boundary,
// allocation-free.
func (h *hierarchy) fillSignals(s *core.Signals) {
	ms := h.dram.Stats()
	tr := h.dram.Config().Transfer
	cycles := h.cyc - h.sigLastCycle
	var busy, pref uint64
	for k := range ms.Started {
		d := (ms.Started[k] - h.sigLastStats.Started[k]) * tr
		busy += d
		if mem.Kind(k) == mem.Prefetch {
			pref = d
		}
	}
	h.sigLastCycle = h.cyc
	h.sigLastStats = ms
	s.IntervalCycles = cycles
	s.BusBusyCycles = busy
	s.BusPrefetchCycles = pref
	if cycles > 0 {
		// Transfers that straddle the boundary can push the estimate past
		// the interval span; utilization is a fraction, so clamp.
		u := float64(busy) / float64(cycles)
		if u > 1 {
			u = 1
		}
		s.BusUtilization = u
	}
}

// newHierarchyShared builds a per-core hierarchy around an externally
// owned DRAM (multi-core mode). The caller ticks the DRAM and dispatches
// its OnStart events to the owning core's onBusStart.
func newHierarchyShared(cfg *Config, ctr *stats.Counters, dram *mem.DRAM, coreID int) *hierarchy {
	pool := newEventPool(1024)
	h := &hierarchy{
		cfg:      cfg,
		ctr:      ctr,
		coreID:   coreID,
		l1:       cache.New("L1D", cfg.L1Blocks, cfg.L1Ways),
		l1i:      buildL1I(cfg),
		l2:       cache.New("L2", cfg.L2Blocks, cfg.L2Ways),
		mshr:     cache.NewMSHRFile(cfg.MSHRs),
		dram:     dram,
		pool:     pool,
		wh:       newWheel(4096, pool),
		l1Misses: make(map[cache.Addr]int32),
		prefQSet: make(map[cache.Addr]bool),
		pfOut:    make([]uint64, 0, 64),
	}
	h.wh.run = h.runEvent
	h.onFillFn = h.onFill
	h.fdp = core.New(cfg.FDP)
	h.ctrlName = "fdp"
	if cfg.Controller != "" && cfg.Controller != "fdp" {
		// Validate vetted the name and model; a Build failure here would
		// mean the config bypassed validation, which Run never allows.
		ctrl, err := control.Build(cfg.Controller, control.Params{
			Thresholds:   cfg.FDP.Thresholds,
			AccuracyOnly: cfg.FDP.AccuracyOnly,
			Model:        cfg.ControllerModel,
		})
		if err != nil {
			panic("sim: unvalidated controller config: " + err.Error())
		}
		h.controller = ctrl
		h.ctrlName = ctrl.Name()
		h.fdp.Decider = ctrl
	}
	h.fdp.OnSignals = h.fillSignals
	h.pf = buildPrefetcher(cfg)
	if h.pf != nil {
		if cfg.StaticLevel > 0 {
			h.pf.SetLevel(cfg.StaticLevel)
		} else {
			h.pf.SetLevel(cfg.FDP.InitLevel)
			h.fdp.OnLevel = h.pf.SetLevel
		}
	}
	if cfg.PrefCacheBlocks > 0 {
		h.pc = cache.New("PrefCache", cfg.PrefCacheBlocks, cfg.PrefCacheWays)
	}
	h.l1.OnEvict = h.onL1Evict
	h.l2.OnEvict = h.onL2Evict
	if cfg.Attribution {
		h.attr = newAttribution()
		if h.pc != nil {
			// Capacity victims of the prefetch cache are unused prefetches
			// (demand uses leave via Invalidate, which skips OnEvict).
			h.pc.OnEvict = func(ev cache.Evicted) { h.attrPrefEvicted(ev.Block.Tag) }
		}
	}
	return h
}

func buildL1I(cfg *Config) *cache.Cache {
	if !cfg.ModelIFetch {
		return nil
	}
	blocks, ways := cfg.L1IBlocks, cfg.L1IWays
	if blocks <= 0 {
		blocks, ways = 1024, 4
	}
	return cache.New("L1I", blocks, ways)
}

func buildPrefetcher(cfg *Config) prefetch.Prefetcher {
	switch cfg.Prefetcher {
	case PrefStream:
		p := prefetch.NewStream(cfg.StreamEntries)
		p.SetPerStreamRamp(cfg.PerStreamRamp)
		return p
	case PrefGHB:
		return prefetch.NewGHB(256, 256, 1024)
	case PrefStride:
		return prefetch.NewStride(512)
	case PrefNextLine:
		return prefetch.NewNextLine()
	case PrefDahlgren:
		return prefetch.NewDahlgren(0.75, 0.40)
	case PrefHybrid:
		return prefetch.NewHybrid(cfg.StreamEntries, 512)
	case PrefCustom:
		return cfg.Custom
	default:
		return nil
	}
}

// addClient registers a completion-event consumer, returning its id.
func (h *hierarchy) addClient(c memClient) int32 {
	h.clients = append(h.clients, c)
	return int32(len(h.clients) - 1)
}

// attach builds a CPU wired to this hierarchy as a new client. The client
// id is bound into the per-CPU access/fetch closures here, once at setup —
// the hot path passes only scalars.
func (h *hierarchy) attach(cfg *Config, src cpu.Source) *cpu.CPU {
	id := int32(len(h.clients))
	h.clients = append(h.clients, nil)
	c := cpu.New(cfg.CPU, src, func(addr, pc uint64, store bool, robIdx int32, seq uint64) {
		h.Access(id, addr, pc, store, robIdx, seq)
	})
	if cfg.ModelIFetch {
		c.SetFetch(func(pc uint64) bool { return h.Fetch(id, pc) })
	}
	if h.attr != nil {
		c.SetAttribution(&h.attr.cpu, h.backpressured)
	}
	h.clients[id] = c
	return c
}

// runEvent dispatches one fired event (the wheel's run hook).
func (h *hierarchy) runEvent(ev event) {
	switch ev.kind {
	case evLoadDone:
		h.clients[ev.client].CompleteLoad(ev.idx, ev.arg)
	case evFetchDone:
		h.clients[ev.client].CompleteFetch()
	case evFillL1:
		h.fillL1(ev.arg)
	}
}

// allocMiss returns a free l1Miss slab index (growing the slab cold).
func (h *hierarchy) allocMiss() int32 {
	if n := len(h.missFree); n > 0 {
		mi := h.missFree[n-1]
		h.missFree = h.missFree[:n-1]
		return mi
	}
	h.missSlab = append(h.missSlab, l1Miss{})
	return int32(len(h.missSlab) - 1)
}

// Tick advances the memory system one cycle. In multi-core mode the
// shared DRAM is ticked once by the runner, not per hierarchy.
func (h *hierarchy) Tick(cycle uint64) {
	h.cyc = cycle
	if h.ownsDRAM {
		h.dram.Tick(cycle)
	}
	h.wh.tick(cycle)
	h.retryPending()
	h.drainPrefetchQueue()
	if h.attr != nil {
		h.attrSampleCycle()
	}
}

// Access submits a memory access from the given client. Loads (robIdx >=
// 0) complete via the client's CompleteLoad once the data is available —
// never synchronously; stores pass robIdx < 0 and need no completion.
func (h *hierarchy) Access(client int32, addr, pc uint64, store bool, robIdx int32, seq uint64) {
	block := addr >> h.cfg.BlockShift
	h.ctr.L1Accesses++
	if b := h.l1.Access(block); b != nil {
		if store {
			b.Dirty = true
		}
		if robIdx >= 0 {
			h.wh.schedule(h.cfg.L1Latency, h.pool.alloc(evLoadDone, client, robIdx, seq))
		}
		return
	}
	h.ctr.L1Misses++
	if mi, ok := h.l1Misses[block]; ok {
		m := &h.missSlab[mi]
		m.anyStore = m.anyStore || store
		if robIdx >= 0 {
			m.waiters.push(h.pool, h.pool.alloc(evLoadDone, client, robIdx, seq))
		}
		return
	}
	mi := h.allocMiss()
	m := &h.missSlab[mi]
	*m = l1Miss{anyStore: store, wantData: true, waiters: newEvList(), fetchWaiters: newEvList()}
	if robIdx >= 0 {
		m.waiters.push(h.pool, h.pool.alloc(evLoadDone, client, robIdx, seq))
	}
	h.l1Misses[block] = mi
	h.l2Demand(block, pc)
}

// Fetch asks for the instruction block containing pc on behalf of the
// given client: it returns true on an L1I hit; on a miss the block is
// requested through the unified L2 and the client's CompleteFetch fires
// when it arrives.
func (h *hierarchy) Fetch(client int32, pc uint64) bool {
	block := pc >> h.cfg.BlockShift
	h.ctr.IFetchBlocks++
	if h.l1i.Access(block) != nil {
		return true
	}
	h.ctr.IFetchL1Misses++
	if mi, ok := h.l1Misses[block]; ok {
		m := &h.missSlab[mi]
		m.wantFetch = true
		m.fetchWaiters.push(h.pool, h.pool.alloc(evFetchDone, client, 0, 0))
		return false
	}
	mi := h.allocMiss()
	m := &h.missSlab[mi]
	*m = l1Miss{wantFetch: true, waiters: newEvList(), fetchWaiters: newEvList()}
	m.fetchWaiters.push(h.pool, h.pool.alloc(evFetchDone, client, 0, 0))
	h.l1Misses[block] = mi
	h.l2Demand(block, 0)
	return false
}

// fillL1 completes an outstanding L1 miss: the block is inserted into the
// L1 and every merged requester's waiter node re-schedules onto the wheel
// (no copy — the nodes move from the waiter list into a bucket) to fire
// after the L1 latency.
func (h *hierarchy) fillL1(block cache.Addr) {
	mi, ok := h.l1Misses[block]
	if !ok {
		return
	}
	delete(h.l1Misses, block)
	m := &h.missSlab[mi]
	if m.wantData {
		h.l1.Insert(block, cache.PosMRU, false, m.anyStore)
	}
	if m.wantFetch && h.l1i != nil {
		h.l1i.Insert(block, cache.PosMRU, false, false)
	}
	for id := m.waiters.take(); id != nilEvent; {
		next := h.pool.at(id).next
		h.wh.schedule(h.cfg.L1Latency, id)
		id = next
	}
	for id := m.fetchWaiters.take(); id != nilEvent; {
		next := h.pool.at(id).next
		h.wh.schedule(h.cfg.L1Latency, id)
		id = next
	}
	h.missFree = append(h.missFree, mi)
}

// l2Demand performs (or re-attempts) a demand access at the L2. When
// structural resources are exhausted the access parks in pendingDemand and
// is replayed in order.
func (h *hierarchy) l2Demand(block cache.Addr, pc uint64) {
	if !h.tryL2Demand(block, pc) {
		h.pendingDemand.push(demandRetry{block: block, pc: pc})
	}
}

func (h *hierarchy) tryL2Demand(block cache.Addr, pc uint64) bool {
	h.pfEv = prefetch.Event{Block: block, PC: pc}
	switch {
	case h.lookupL2Hit(block):
		// handled: fill scheduled
	case h.lookupPrefCache(block):
		// handled: migrated from the prefetch cache
	default:
		if !h.l2Miss(block) {
			return false // resource stall: retry without training the prefetcher
		}
	}
	if h.pf != nil {
		h.pfOut = h.pf.Observe(&h.pfEv, h.pfOut[:0])
		for _, p := range h.pfOut {
			h.enqueuePrefetch(p)
		}
	}
	return true
}

// lookupL2Hit services a demand hit in the L2.
func (h *hierarchy) lookupL2Hit(block cache.Addr) bool {
	h.ctr.L2DemandAccesses++
	b := h.l2.Access(block)
	if b == nil {
		h.ctr.L2DemandAccesses-- // recounted on the path actually taken
		return false
	}
	h.ctr.L2DemandHits++
	if b.Pref {
		b.Pref = false
		h.ctr.PrefUsed++
		h.fdp.OnPrefetchUsed()
		h.pfEv.PrefHit = true
		if h.attr != nil {
			h.attrPrefUsed(block)
		}
	}
	h.wh.schedule(h.cfg.L2Latency, h.pool.alloc(evFillL1, 0, 0, block))
	return true
}

// lookupPrefCache migrates a demand-hit block from the separate prefetch
// cache into the L2 (Section 5.7's prefetch-cache organization).
func (h *hierarchy) lookupPrefCache(block cache.Addr) bool {
	if h.pc == nil {
		return false
	}
	if _, ok := h.pc.Invalidate(block); !ok {
		return false
	}
	h.ctr.L2DemandAccesses++
	h.ctr.PrefCacheHits++
	h.ctr.PrefUsed++
	h.fdp.OnPrefetchUsed()
	if h.attr != nil {
		h.attrPrefUsed(block)
	}
	h.l2.Insert(block, cache.PosMRU, false, false)
	h.wh.schedule(h.cfg.L2Latency, h.pool.alloc(evFillL1, 0, 0, block))
	return true
}

// l2Miss handles a demand L2 miss: merge into an in-flight request (late
// prefetch detection) or allocate an MSHR and go to memory. Returns false
// when MSHRs or the demand queue are exhausted.
//
// An MSHR entry needs no waiter list: same-block demands merge in the
// l1Misses table before reaching the L2, so the only continuation a fill
// can owe is a single fillL1 — recorded by the DemandMerged bit and
// scheduled by onFill.
func (h *hierarchy) l2Miss(block cache.Addr) bool {
	if e := h.mshr.Lookup(block); e != nil {
		h.ctr.L2DemandAccesses++
		h.ctr.L2DemandMisses++
		h.ctr.DemandMisses++
		if h.fdp.OnDemandMiss(block) {
			h.ctr.PollutionHits++
		}
		h.pfEv.Miss = true
		if e.Pref {
			// Demand hit an in-flight prefetch: the prefetch is late.
			e.Pref = false
			h.ctr.PrefLate++
			h.ctr.PrefUsed++
			h.fdp.OnPrefetchLate()
			h.dram.Promote(block)
			if h.attr != nil {
				h.attrPrefLate(block)
			}
		}
		e.DemandMerged = true
		return true
	}
	if h.mshr.Full() || !h.dram.CanEnqueue(mem.Demand) {
		return false
	}
	h.ctr.L2DemandAccesses++
	h.ctr.L2DemandMisses++
	h.ctr.DemandMisses++
	if h.fdp.OnDemandMiss(block) {
		h.ctr.PollutionHits++
	}
	h.pfEv.Miss = true
	e := h.mshr.Allocate(block, false, h.cyc)
	e.DemandMerged = true
	e.Issued = true
	r := h.dram.Acquire()
	r.Block, r.Kind, r.Owner, r.Done = block, mem.Demand, h.coreID, h.onFillFn
	h.dram.Enqueue(r, h.cyc)
	return true
}

// enqueuePrefetch admits a prefetcher-generated block address into the
// Prefetch Request Queue. Requests for blocks that are already resident,
// in flight, or queued are filtered here so that a high-degree prefetcher
// re-covering its own window cannot crowd the far-ahead addresses out of
// the bounded queue.
func (h *hierarchy) enqueuePrefetch(block cache.Addr) {
	h.ctr.PrefIssued++
	if h.prefQSet[block] || h.l2.Contains(block) ||
		(h.pc != nil && h.pc.Contains(block)) || h.mshr.Lookup(block) != nil {
		h.ctr.PrefDropped++
		return
	}
	if h.prefQ.len() >= h.cfg.PrefQueueCap {
		h.ctr.PrefDropped++
		return
	}
	h.prefQ.push(block)
	h.prefQSet[block] = true
}

// drainPrefetchQueue moves prefetch requests from the Prefetch Request
// Queue into the memory system, filtering ones that are already resident
// or in flight. Prefetches enter the bus queue at the lowest priority.
func (h *hierarchy) drainPrefetchQueue() {
	for k := 0; k < h.cfg.PrefDrainPerTick && h.prefQ.len() > 0; k++ {
		block := h.prefQ.peek()
		if h.l2.Contains(block) || (h.pc != nil && h.pc.Contains(block)) || h.mshr.Lookup(block) != nil {
			h.prefQ.pop()
			delete(h.prefQSet, block)
			h.ctr.PrefDropped++
			continue
		}
		if h.mshr.Full() || !h.dram.CanEnqueue(mem.Prefetch) {
			return
		}
		h.prefQ.pop()
		delete(h.prefQSet, block)
		e := h.mshr.Allocate(block, true, h.cyc)
		e.Issued = true
		r := h.dram.Acquire()
		r.Block, r.Kind, r.Owner, r.WasPrefetch, r.Done = block, mem.Prefetch, h.coreID, true, h.onFillFn
		h.dram.Enqueue(r, h.cyc)
	}
}

// onFill receives a completed memory read: release the MSHR, insert the
// block (into the prefetch cache for prefetches when one is configured,
// otherwise into the L2 at the policy-selected stack position), and wake
// the merged demand — one evFillL1 a cycle later — when there is one.
func (h *hierarchy) onFill(r *mem.Request) {
	var stillPref, demandMerged bool
	if e := h.mshr.Release(r.Block); e != nil {
		stillPref = e.Pref
		demandMerged = e.DemandMerged
	}
	if h.attr != nil && r.WasPrefetch {
		h.attrPrefFilled(r.Block, stillPref)
	}
	if stillPref && h.pc != nil {
		h.pc.Insert(r.Block, cache.PosMRU, true, false)
		h.ctr.PrefetchFilled++
		h.fdp.OnPrefetchFill(r.Block)
		return
	}
	pos := cache.PosMRU
	if stillPref {
		if h.cfg.FDP.DynamicInsertion {
			pos = h.fdp.InsertionPos()
		} else {
			pos = h.cfg.FDP.StaticInsertion
		}
		h.ctr.PrefetchFilled++
		h.fdp.OnPrefetchFill(r.Block)
	}
	h.l2.Insert(r.Block, pos, stillPref, false)
	if demandMerged {
		h.wh.schedule(1, h.pool.alloc(evFillL1, 0, 0, r.Block))
	}
}

// onL1Evict writes dirty L1 victims back into the L2, or straight to
// memory when the L2 no longer holds the block.
func (h *hierarchy) onL1Evict(ev cache.Evicted) {
	if !ev.Block.Dirty {
		return
	}
	if h.l2.SetDirty(ev.Block.Tag) {
		return
	}
	h.writeback(ev.Block.Tag)
}

// onL2Evict feeds FDP's pollution filter and interval counter and emits
// writeback traffic for dirty victims. A victim is "useful" (advancing the
// sampling interval) when a demand ever touched it; it arms the pollution
// filter only when it was demand-filled and displaced by a prefetch.
func (h *hierarchy) onL2Evict(ev cache.Evicted) {
	used := !ev.Block.Pref
	if used {
		h.ctr.UsefulEvicted++
	} else if h.attr != nil {
		h.attrPrefEvicted(ev.Block.Tag)
	}
	h.fdp.OnEviction(ev.Block.Tag, used, ev.Block.DemandFill, ev.ByPrefetch)
	if ev.Block.Dirty {
		h.writeback(ev.Block.Tag)
	}
}

func (h *hierarchy) writeback(block cache.Addr) {
	r := h.dram.Acquire()
	r.Block, r.Kind, r.Owner = block, mem.Writeback, h.coreID
	if !h.dram.Enqueue(r, h.cyc) {
		h.pendingWB.push(block)
	}
}

// onBusStart counts bus transactions at the moment a request wins the bus,
// which is when the paper counts a prefetch as "sent to memory".
func (h *hierarchy) onBusStart(r *mem.Request) {
	switch {
	case r.Kind == mem.Writeback:
		h.ctr.BusWritebacks++
	case r.WasPrefetch:
		h.ctr.BusPrefetches++
		h.ctr.PrefSent++
		h.fdp.OnPrefetchSent()
	default:
		h.ctr.BusReads++
	}
}

// retryPending replays structural-stall victims in arrival order.
func (h *hierarchy) retryPending() {
	for h.pendingWB.len() > 0 {
		r := h.dram.Acquire()
		r.Block, r.Kind, r.Owner = h.pendingWB.peek(), mem.Writeback, h.coreID
		if !h.dram.Enqueue(r, h.cyc) {
			break
		}
		h.pendingWB.pop()
	}
	for tries := 0; tries < 8 && h.pendingDemand.len() > 0; tries++ {
		d := h.pendingDemand.peek()
		if !h.tryL2Demand(d.block, d.pc) {
			break
		}
		h.pendingDemand.pop()
	}
}

// Quiesced reports whether no memory-system work remains in flight.
func (h *hierarchy) Quiesced() bool {
	return !h.dram.Busy() && h.mshr.Used() == 0 &&
		h.pendingDemand.len() == 0 && h.prefQ.len() == 0 && h.pendingWB.len() == 0
}
