package sim

import (
	"fdpsim/internal/cache"
	"fdpsim/internal/core"
	"fdpsim/internal/mem"
	"fdpsim/internal/prefetch"
	"fdpsim/internal/stats"
)

// l1Miss tracks one outstanding L1-level miss so that same-block requests
// merge. A block may be wanted by the data side, the instruction-fetch
// side, or both (self-modifying-code layouts aside, "both" only happens
// when a workload reads its own code region).
type l1Miss struct {
	waiters      []func()
	fetchWaiters []func()
	anyStore     bool
	wantData     bool
	wantFetch    bool
}

// hierarchy is the two-level cache hierarchy plus prefetcher, FDP engine,
// queues and DRAM of the baseline processor. The CPU calls Access; the
// runner calls Tick once per cycle before the CPU ticks.
type hierarchy struct {
	cfg      *Config
	cyc      uint64
	coreID   int
	ownsDRAM bool
	ctr      *stats.Counters
	l1       *cache.Cache
	l1i      *cache.Cache // nil when instruction fetch is not modeled
	l2       *cache.Cache
	mshr     *cache.MSHRFile
	dram     *mem.DRAM
	pf       prefetch.Prefetcher
	fdp      *core.FDP
	pc       *cache.Cache // optional prefetch cache
	wh       *wheel

	l1Misses map[cache.Addr]*l1Miss

	prefQ    []cache.Addr        // Prefetch Request Queue
	prefQSet map[cache.Addr]bool // membership filter for the queue

	// pendingDemand holds demand L2 accesses stalled on a full MSHR file
	// or bus queue; retried in order each cycle.
	pendingDemand []func() bool
	// pendingWB holds writebacks stalled on a full writeback queue.
	pendingWB []cache.Addr
}

func newHierarchy(cfg *Config, ctr *stats.Counters) *hierarchy {
	h := newHierarchyShared(cfg, ctr, mem.New(cfg.DRAM), 0)
	h.ownsDRAM = true
	h.dram.OnStart = h.onBusStart
	return h
}

// newHierarchyShared builds a per-core hierarchy around an externally
// owned DRAM (multi-core mode). The caller ticks the DRAM and dispatches
// its OnStart events to the owning core's onBusStart.
func newHierarchyShared(cfg *Config, ctr *stats.Counters, dram *mem.DRAM, coreID int) *hierarchy {
	h := &hierarchy{
		cfg:      cfg,
		ctr:      ctr,
		coreID:   coreID,
		l1:       cache.New("L1D", cfg.L1Blocks, cfg.L1Ways),
		l1i:      buildL1I(cfg),
		l2:       cache.New("L2", cfg.L2Blocks, cfg.L2Ways),
		mshr:     cache.NewMSHRFile(cfg.MSHRs),
		dram:     dram,
		wh:       newWheel(4096),
		l1Misses: make(map[cache.Addr]*l1Miss),
		prefQSet: make(map[cache.Addr]bool),
	}
	h.fdp = core.New(cfg.FDP)
	h.pf = buildPrefetcher(cfg)
	if h.pf != nil {
		if cfg.StaticLevel > 0 {
			h.pf.SetLevel(cfg.StaticLevel)
		} else {
			h.pf.SetLevel(cfg.FDP.InitLevel)
			h.fdp.OnLevel = h.pf.SetLevel
		}
	}
	if cfg.PrefCacheBlocks > 0 {
		h.pc = cache.New("PrefCache", cfg.PrefCacheBlocks, cfg.PrefCacheWays)
	}
	h.l1.OnEvict = h.onL1Evict
	h.l2.OnEvict = h.onL2Evict
	return h
}

func buildL1I(cfg *Config) *cache.Cache {
	if !cfg.ModelIFetch {
		return nil
	}
	blocks, ways := cfg.L1IBlocks, cfg.L1IWays
	if blocks <= 0 {
		blocks, ways = 1024, 4
	}
	return cache.New("L1I", blocks, ways)
}

func buildPrefetcher(cfg *Config) prefetch.Prefetcher {
	switch cfg.Prefetcher {
	case PrefStream:
		p := prefetch.NewStream(cfg.StreamEntries)
		p.SetPerStreamRamp(cfg.PerStreamRamp)
		return p
	case PrefGHB:
		return prefetch.NewGHB(256, 256, 1024)
	case PrefStride:
		return prefetch.NewStride(512)
	case PrefNextLine:
		return prefetch.NewNextLine()
	case PrefDahlgren:
		return prefetch.NewDahlgren(0.75, 0.40)
	case PrefHybrid:
		return prefetch.NewHybrid(cfg.StreamEntries, 512)
	case PrefCustom:
		return cfg.Custom
	default:
		return nil
	}
}

// Tick advances the memory system one cycle. In multi-core mode the
// shared DRAM is ticked once by the runner, not per hierarchy.
func (h *hierarchy) Tick(cycle uint64) {
	h.cyc = cycle
	if h.ownsDRAM {
		h.dram.Tick(cycle)
	}
	h.wh.tick(cycle)
	h.retryPending()
	h.drainPrefetchQueue()
}

// Access is the cpu.MemFunc entry point. done may be nil (stores).
func (h *hierarchy) Access(addr, pc uint64, store bool, done func()) {
	block := addr >> h.cfg.BlockShift
	h.ctr.L1Accesses++
	if b := h.l1.Access(block); b != nil {
		if store {
			b.Dirty = true
		}
		if done != nil {
			h.wh.schedule(h.cfg.L1Latency, done)
		}
		return
	}
	h.ctr.L1Misses++
	if m, ok := h.l1Misses[block]; ok {
		m.anyStore = m.anyStore || store
		if done != nil {
			m.waiters = append(m.waiters, done)
		}
		return
	}
	m := &l1Miss{anyStore: store, wantData: true}
	if done != nil {
		m.waiters = append(m.waiters, done)
	}
	h.l1Misses[block] = m
	h.l2Demand(block, pc)
}

// Fetch is the cpu.FetchFunc entry point: it returns true on an L1I hit;
// on a miss the block is requested through the unified L2 and done fires
// when it arrives.
func (h *hierarchy) Fetch(pc uint64, done func()) bool {
	block := pc >> h.cfg.BlockShift
	h.ctr.IFetchBlocks++
	if h.l1i.Access(block) != nil {
		return true
	}
	h.ctr.IFetchL1Misses++
	if m, ok := h.l1Misses[block]; ok {
		m.wantFetch = true
		m.fetchWaiters = append(m.fetchWaiters, done)
		return false
	}
	m := &l1Miss{wantFetch: true, fetchWaiters: []func(){done}}
	h.l1Misses[block] = m
	h.l2Demand(block, 0)
	return false
}

// fillL1 completes an outstanding L1 miss: the block is inserted into the
// L1 and every merged requester resumes after the L1 latency.
func (h *hierarchy) fillL1(block cache.Addr) {
	m, ok := h.l1Misses[block]
	if !ok {
		return
	}
	delete(h.l1Misses, block)
	if m.wantData {
		h.l1.Insert(block, cache.PosMRU, false, m.anyStore)
	}
	if m.wantFetch && h.l1i != nil {
		h.l1i.Insert(block, cache.PosMRU, false, false)
	}
	for _, w := range m.waiters {
		h.wh.schedule(h.cfg.L1Latency, w)
	}
	for _, w := range m.fetchWaiters {
		h.wh.schedule(h.cfg.L1Latency, w)
	}
}

// l2Demand performs (or re-attempts) a demand access at the L2. When
// structural resources are exhausted the access parks in pendingDemand and
// is replayed in order.
func (h *hierarchy) l2Demand(block cache.Addr, pc uint64) {
	if !h.tryL2Demand(block, pc) {
		h.pendingDemand = append(h.pendingDemand, func() bool { return h.tryL2Demand(block, pc) })
	}
}

func (h *hierarchy) tryL2Demand(block cache.Addr, pc uint64) bool {
	ev := prefetch.Event{Block: block, PC: pc}
	switch {
	case h.lookupL2Hit(block, &ev):
		// handled: fill scheduled
	case h.lookupPrefCache(block):
		// handled: migrated from the prefetch cache
	default:
		if !h.l2Miss(block, &ev) {
			return false // resource stall: retry without training the prefetcher
		}
	}
	if h.pf != nil {
		for _, p := range h.pf.Observe(ev) {
			h.enqueuePrefetch(p)
		}
	}
	return true
}

// lookupL2Hit services a demand hit in the L2.
func (h *hierarchy) lookupL2Hit(block cache.Addr, ev *prefetch.Event) bool {
	h.ctr.L2DemandAccesses++
	b := h.l2.Access(block)
	if b == nil {
		h.ctr.L2DemandAccesses-- // recounted on the path actually taken
		return false
	}
	h.ctr.L2DemandHits++
	if b.Pref {
		b.Pref = false
		h.ctr.PrefUsed++
		h.fdp.OnPrefetchUsed()
		ev.PrefHit = true
	}
	h.wh.schedule(h.cfg.L2Latency, func() { h.fillL1(block) })
	return true
}

// lookupPrefCache migrates a demand-hit block from the separate prefetch
// cache into the L2 (Section 5.7's prefetch-cache organization).
func (h *hierarchy) lookupPrefCache(block cache.Addr) bool {
	if h.pc == nil {
		return false
	}
	if _, ok := h.pc.Invalidate(block); !ok {
		return false
	}
	h.ctr.L2DemandAccesses++
	h.ctr.PrefCacheHits++
	h.ctr.PrefUsed++
	h.fdp.OnPrefetchUsed()
	h.l2.Insert(block, cache.PosMRU, false, false)
	h.wh.schedule(h.cfg.L2Latency, func() { h.fillL1(block) })
	return true
}

// l2Miss handles a demand L2 miss: merge into an in-flight request (late
// prefetch detection) or allocate an MSHR and go to memory. Returns false
// when MSHRs or the demand queue are exhausted.
func (h *hierarchy) l2Miss(block cache.Addr, ev *prefetch.Event) bool {
	if e := h.mshr.Lookup(block); e != nil {
		h.ctr.L2DemandAccesses++
		h.ctr.L2DemandMisses++
		h.ctr.DemandMisses++
		if h.fdp.OnDemandMiss(block) {
			h.ctr.PollutionHits++
		}
		ev.Miss = true
		if e.Pref {
			// Demand hit an in-flight prefetch: the prefetch is late.
			e.Pref = false
			h.ctr.PrefLate++
			h.ctr.PrefUsed++
			h.fdp.OnPrefetchLate()
			h.dram.Promote(block)
		}
		e.DemandMerged = true
		e.Waiters = append(e.Waiters, func() { h.fillL1(block) })
		return true
	}
	if h.mshr.Full() || !h.dram.CanEnqueue(mem.Demand) {
		return false
	}
	h.ctr.L2DemandAccesses++
	h.ctr.L2DemandMisses++
	h.ctr.DemandMisses++
	if h.fdp.OnDemandMiss(block) {
		h.ctr.PollutionHits++
	}
	ev.Miss = true
	e := h.mshr.Allocate(block, false, h.cyc)
	e.DemandMerged = true
	e.Waiters = append(e.Waiters, func() { h.fillL1(block) })
	e.Issued = true
	h.dram.Enqueue(&mem.Request{Block: block, Kind: mem.Demand, Owner: h.coreID, Done: h.onFill}, h.cyc)
	return true
}

// enqueuePrefetch admits a prefetcher-generated block address into the
// Prefetch Request Queue. Requests for blocks that are already resident,
// in flight, or queued are filtered here so that a high-degree prefetcher
// re-covering its own window cannot crowd the far-ahead addresses out of
// the bounded queue.
func (h *hierarchy) enqueuePrefetch(block cache.Addr) {
	h.ctr.PrefIssued++
	if h.prefQSet[block] || h.l2.Contains(block) ||
		(h.pc != nil && h.pc.Contains(block)) || h.mshr.Lookup(block) != nil {
		h.ctr.PrefDropped++
		return
	}
	if len(h.prefQ) >= h.cfg.PrefQueueCap {
		h.ctr.PrefDropped++
		return
	}
	h.prefQ = append(h.prefQ, block)
	h.prefQSet[block] = true
}

// drainPrefetchQueue moves prefetch requests from the Prefetch Request
// Queue into the memory system, filtering ones that are already resident
// or in flight. Prefetches enter the bus queue at the lowest priority.
func (h *hierarchy) drainPrefetchQueue() {
	for k := 0; k < h.cfg.PrefDrainPerTick && len(h.prefQ) > 0; k++ {
		block := h.prefQ[0]
		if h.l2.Contains(block) || (h.pc != nil && h.pc.Contains(block)) || h.mshr.Lookup(block) != nil {
			h.prefQ = h.prefQ[1:]
			delete(h.prefQSet, block)
			h.ctr.PrefDropped++
			continue
		}
		if h.mshr.Full() || !h.dram.CanEnqueue(mem.Prefetch) {
			return
		}
		h.prefQ = h.prefQ[1:]
		delete(h.prefQSet, block)
		e := h.mshr.Allocate(block, true, h.cyc)
		e.Issued = true
		h.dram.Enqueue(&mem.Request{Block: block, Kind: mem.Prefetch, Owner: h.coreID, WasPrefetch: true, Done: h.onFill}, h.cyc)
	}
}

// onFill receives a completed memory read: release the MSHR, insert the
// block (into the prefetch cache for prefetches when one is configured,
// otherwise into the L2 at the policy-selected stack position), and wake
// merged demand requests.
func (h *hierarchy) onFill(r *mem.Request) {
	e := h.mshr.Release(r.Block)
	stillPref := e != nil && e.Pref
	if stillPref && h.pc != nil {
		h.pc.Insert(r.Block, cache.PosMRU, true, false)
		h.ctr.PrefetchFilled++
		h.fdp.OnPrefetchFill(r.Block)
		return
	}
	pos := cache.PosMRU
	if stillPref {
		if h.cfg.FDP.DynamicInsertion {
			pos = h.fdp.InsertionPos()
		} else {
			pos = h.cfg.FDP.StaticInsertion
		}
		h.ctr.PrefetchFilled++
		h.fdp.OnPrefetchFill(r.Block)
	}
	h.l2.Insert(r.Block, pos, stillPref, false)
	if e != nil {
		for _, w := range e.Waiters {
			h.wh.schedule(1, w)
		}
	}
}

// onL1Evict writes dirty L1 victims back into the L2, or straight to
// memory when the L2 no longer holds the block.
func (h *hierarchy) onL1Evict(ev cache.Evicted) {
	if !ev.Block.Dirty {
		return
	}
	if h.l2.SetDirty(ev.Block.Tag) {
		return
	}
	h.writeback(ev.Block.Tag)
}

// onL2Evict feeds FDP's pollution filter and interval counter and emits
// writeback traffic for dirty victims. A victim is "useful" (advancing the
// sampling interval) when a demand ever touched it; it arms the pollution
// filter only when it was demand-filled and displaced by a prefetch.
func (h *hierarchy) onL2Evict(ev cache.Evicted) {
	used := !ev.Block.Pref
	if used {
		h.ctr.UsefulEvicted++
	}
	h.fdp.OnEviction(ev.Block.Tag, used, ev.Block.DemandFill, ev.ByPrefetch)
	if ev.Block.Dirty {
		h.writeback(ev.Block.Tag)
	}
}

func (h *hierarchy) writeback(block cache.Addr) {
	if !h.dram.Enqueue(&mem.Request{Block: block, Kind: mem.Writeback, Owner: h.coreID}, h.cyc) {
		h.pendingWB = append(h.pendingWB, block)
	}
}

// onBusStart counts bus transactions at the moment a request wins the bus,
// which is when the paper counts a prefetch as "sent to memory".
func (h *hierarchy) onBusStart(r *mem.Request) {
	switch {
	case r.Kind == mem.Writeback:
		h.ctr.BusWritebacks++
	case r.WasPrefetch:
		h.ctr.BusPrefetches++
		h.ctr.PrefSent++
		h.fdp.OnPrefetchSent()
	default:
		h.ctr.BusReads++
	}
}

// retryPending replays structural-stall victims in arrival order.
func (h *hierarchy) retryPending() {
	for len(h.pendingWB) > 0 {
		if !h.dram.Enqueue(&mem.Request{Block: h.pendingWB[0], Kind: mem.Writeback, Owner: h.coreID}, h.cyc) {
			break
		}
		h.pendingWB = h.pendingWB[1:]
	}
	for tries := 0; tries < 8 && len(h.pendingDemand) > 0; tries++ {
		if !h.pendingDemand[0]() {
			break
		}
		h.pendingDemand = h.pendingDemand[1:]
	}
}

// Quiesced reports whether no memory-system work remains in flight.
func (h *hierarchy) Quiesced() bool {
	return !h.dram.Busy() && h.mshr.Used() == 0 &&
		len(h.pendingDemand) == 0 && len(h.prefQ) == 0 && len(h.pendingWB) == 0
}
