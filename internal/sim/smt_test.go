package sim

import "testing"

func smtBase() Config {
	cfg := Conventional(PrefStream, 5)
	cfg.MaxInsts = 40_000
	return cfg
}

func TestRunSMTValidation(t *testing.T) {
	if _, err := RunSMT(SMTConfig{Base: smtBase()}); err == nil {
		t.Fatal("zero-thread SMT config accepted")
	}
	bad := smtBase()
	bad.MaxInsts = 0
	if _, err := RunSMT(SMTConfig{Base: bad, Workloads: []string{"seqstream"}}); err == nil {
		t.Fatal("invalid base config accepted")
	}
	warm := smtBase()
	warm.WarmupInsts = 1000
	if _, err := RunSMT(SMTConfig{Base: warm, Workloads: []string{"seqstream"}}); err == nil {
		t.Fatal("warmup accepted in SMT mode")
	}
	if _, err := RunSMT(SMTConfig{Base: smtBase(), Workloads: []string{"nope"}}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestRunSMTSingleThread(t *testing.T) {
	res, err := RunSMT(SMTConfig{Base: smtBase(), Workloads: []string{"seqstream"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Threads) != 1 || res.Threads[0].IPC <= 0 {
		t.Fatalf("threads = %+v", res.Threads)
	}
	if res.Accuracy < 0.9 {
		t.Fatalf("accuracy %.2f on a single stream thread", res.Accuracy)
	}
	if res.BPKI <= 0 {
		t.Fatal("no shared-hierarchy traffic recorded")
	}
}

func TestRunSMTThreadsShareTheL2(t *testing.T) {
	// A cache-resident thread sharing the hierarchy with a streaming
	// thread must lose some of its solo performance to cache contention.
	// A small L2 makes the contention visible at test scale.
	base := smtBase()
	base.L2Blocks = 512 // 32 KB
	base.FDP.TInterval = 256
	// Long enough that the streaming thread's eviction pressure reaches
	// the resident thread before it finishes.
	base.MaxInsts = 400_000
	solo, err := RunSMT(SMTConfig{Base: base, Workloads: []string{"tinyloop"}})
	if err != nil {
		t.Fatal(err)
	}
	duo, err := RunSMT(SMTConfig{Base: base, Workloads: []string{"tinyloop", "regionwalk"}})
	if err != nil {
		t.Fatal(err)
	}
	if duo.Threads[0].IPC >= solo.Threads[0].IPC {
		t.Fatalf("shared-L2 thread IPC %.3f not below solo %.3f",
			duo.Threads[0].IPC, solo.Threads[0].IPC)
	}
	if duo.AggregateIPC() <= duo.Threads[0].IPC {
		t.Fatal("aggregate IPC not above single thread")
	}
}

func TestRunSMTFDPSeesCombinedStream(t *testing.T) {
	base := WithFDP(PrefStream)
	base.MaxInsts = 60_000
	base.FDP.TInterval = 512
	res, err := RunSMT(SMTConfig{Base: base, Workloads: []string{"seqstream", "chaserand"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Intervals == 0 && res.FinalLevel == 3 {
		t.Skip("no intervals completed at this scale")
	}
	// The hostile thread's junk pollutes the shared estimate; the level
	// must not sit pinned at Very Aggressive.
	if res.FinalLevel == 5 && res.Pollution > 0.35 {
		t.Fatalf("shared FDP ignored pollution %.2f (level %d)", res.Pollution, res.FinalLevel)
	}
}
