package sweep

import (
	"fmt"

	"fdpsim/internal/harness"
)

// Cell is one grid cell's reportable state: the unit's coordinates plus
// the job that executes it. The service builds cells from live job state;
// everything here is aggregation over them.
type Cell struct {
	Workload    string  `json:"workload"`
	Config      string  `json:"config"`
	Seed        uint64  `json:"seed"`
	JobID       string  `json:"job_id"`
	Fingerprint string  `json:"fingerprint"`
	State       string  `json:"state"` // queued, running, done, failed, cancelled
	CacheHit    bool    `json:"cache_hit,omitempty"`
	IPC         float64 `json:"ipc,omitempty"`
	BPKI        float64 `json:"bpki,omitempty"`
	// BusUtil is the run's data-bus occupancy fraction, filled only for
	// attribution sweeps (Request.Attribution); the merged tables gain a
	// bus-util table when any cell carries it.
	BusUtil float64 `json:"bus_util,omitempty"`
	Error   string  `json:"error,omitempty"`
}

// Summary is the aggregate a sweep's SSE feed streams: state counts plus
// rolling means of the paper's two headline metrics over completed cells.
type Summary struct {
	Total     int `json:"total"`
	Queued    int `json:"queued"`
	Running   int `json:"running"`
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Cancelled int `json:"cancelled"`
	CacheHits int `json:"cache_hits"`

	// MeanIPC and MeanBPKI average the completed cells so far — the
	// rolling aggregate a dashboard plots while the sweep runs.
	MeanIPC  float64 `json:"mean_ipc"`
	MeanBPKI float64 `json:"mean_bpki"`
}

// Terminal reports whether every cell has reached a final state.
func (s Summary) Terminal() bool {
	return s.Done+s.Failed+s.Cancelled == s.Total
}

// Summarize folds cells into the aggregate.
func Summarize(cells []Cell) Summary {
	var sum Summary
	sum.Total = len(cells)
	var ipc, bpki float64
	for _, c := range cells {
		switch c.State {
		case "queued":
			sum.Queued++
		case "running":
			sum.Running++
		case "done":
			sum.Done++
			ipc += c.IPC
			bpki += c.BPKI
		case "failed":
			sum.Failed++
		case "cancelled":
			sum.Cancelled++
		}
		if c.CacheHit {
			sum.CacheHits++
		}
	}
	if sum.Done > 0 {
		sum.MeanIPC = ipc / float64(sum.Done)
		sum.MeanBPKI = bpki / float64(sum.Done)
	}
	return sum
}

// Tables renders the merged results the way the harness renders an
// experiment: one row per (workload, seed), one column per configuration
// label, one table per metric (IPC and BPKI — the paper's performance and
// bandwidth-cost axes). Cells not yet done render as "-", failed ones as
// "x", so a partial sweep still produces a readable table. Column order
// is first appearance in cells, which Expand keeps stable.
func Tables(title string, cells []Cell) []harness.Table {
	var configs []string
	seenCfg := map[string]bool{}
	type rowKey struct {
		workload string
		seed     uint64
	}
	var rows []rowKey
	seenRow := map[rowKey]bool{}
	grid := map[rowKey]map[string]Cell{}
	multiSeed := false
	for _, c := range cells {
		if !seenCfg[c.Config] {
			seenCfg[c.Config] = true
			configs = append(configs, c.Config)
		}
		rk := rowKey{c.Workload, c.Seed}
		if !seenRow[rk] {
			seenRow[rk] = true
			rows = append(rows, rk)
		}
		if grid[rk] == nil {
			grid[rk] = map[string]Cell{}
		}
		grid[rk][c.Config] = c
		if c.Seed != cells[0].Seed {
			multiSeed = true
		}
	}

	rowLabel := func(rk rowKey) string {
		if multiSeed {
			return fmt.Sprintf("%s/s%d", rk.workload, rk.seed)
		}
		return rk.workload
	}
	build := func(metric string, value func(Cell) float64) harness.Table {
		t := harness.Table{
			Title:  fmt.Sprintf("%s — %s", title, metric),
			Header: append([]string{"Workload"}, configs...),
		}
		for _, rk := range rows {
			cellsRow := []string{rowLabel(rk)}
			for _, cfg := range configs {
				c, ok := grid[rk][cfg]
				switch {
				case !ok || c.State == "queued" || c.State == "running":
					cellsRow = append(cellsRow, "-")
				case c.State == "done":
					cellsRow = append(cellsRow, fmt.Sprintf("%.3f", value(c)))
				default: // failed, cancelled
					cellsRow = append(cellsRow, "x")
				}
			}
			t.AddRow(cellsRow...)
		}
		return t
	}
	tables := []harness.Table{
		build("IPC", func(c Cell) float64 { return c.IPC }),
		build("BPKI", func(c Cell) float64 { return c.BPKI }),
	}
	for _, c := range cells {
		if c.BusUtil > 0 {
			tables = append(tables, build("bus-util", func(c Cell) float64 { return c.BusUtil }))
			break
		}
	}
	return tables
}
