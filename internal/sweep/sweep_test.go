package sweep

import (
	"errors"
	"strings"
	"testing"

	"fdpsim/internal/sim"
	"fdpsim/internal/workload/spec"
)

func threeAxis() Request {
	return Request{
		Name:      "t2-slice",
		Workloads: []string{"seqstream", "chaserand"},
		Configs: []ConfigAxis{
			{Prefetcher: "stream", Level: 5},
			{Prefetcher: "stream", FDP: true},
			{Prefetcher: "none"},
		},
		Seeds: []uint64{1, 2, 3},
		Insts: 100_000,
	}
}

func TestExpandCrossProduct(t *testing.T) {
	req := threeAxis()
	units, err := req.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 18 { // 2 workloads × 3 configs × 3 seeds
		t.Fatalf("expanded %d units, want 18", len(units))
	}

	// Stable order: workload-major, then config, then seed.
	first := units[0]
	if first.Workload != "seqstream" || first.Config != "stream-L5" || first.Seed != 1 {
		t.Fatalf("first unit = %+v", first)
	}
	last := units[17]
	if last.Workload != "chaserand" || last.Config != "none" || last.Seed != 3 {
		t.Fatalf("last unit = %+v", last)
	}

	// Every unit is fingerprintable and distinct, carries the shared
	// sizing, and has a job-valid configuration.
	fps := map[string]bool{}
	keys := map[string]bool{}
	for _, u := range units {
		fp, ok := u.Fingerprint()
		if !ok {
			t.Fatalf("unit %+v not fingerprintable", u)
		}
		if fps[fp] {
			t.Fatalf("duplicate fingerprint for %+v", u)
		}
		fps[fp] = true
		if keys[u.Key()] {
			t.Fatalf("duplicate key %q", u.Key())
		}
		keys[u.Key()] = true
		if u.Cfg.MaxInsts != 100_000 || u.Cfg.Seed != u.Seed || u.Cfg.Workload != u.Workload {
			t.Fatalf("sizing not stamped: %+v", u.Cfg)
		}
	}
}

func TestExpandDerivedLabels(t *testing.T) {
	for _, tc := range []struct {
		axis ConfigAxis
		want string
	}{
		{ConfigAxis{}, "stream-L5"},
		{ConfigAxis{Prefetcher: "ghb", FDP: true}, "ghb-fdp"},
		{ConfigAxis{Prefetcher: "none"}, "none"},
		{ConfigAxis{Prefetcher: "stride", Level: 2}, "stride-L2"},
		{ConfigAxis{Level: 5, DynamicInsertion: true}, "stream-L5+dynins"},
		{ConfigAxis{Label: "mine", Prefetcher: "ghb"}, "mine"},
	} {
		if got := tc.axis.label(); got != tc.want {
			t.Errorf("label(%+v) = %q, want %q", tc.axis, got, tc.want)
		}
	}
}

func TestExpandSpecs(t *testing.T) {
	sp := &spec.Spec{
		Name: "sweepspec",
		Phases: []spec.Phase{{
			Clients: []spec.Client{{Pattern: spec.Pattern{Kind: spec.KindStride, FootprintKB: 256}}},
		}},
	}
	req := Request{
		Specs:   []*spec.Spec{sp},
		Configs: []ConfigAxis{{Prefetcher: "stream", FDP: true}},
	}
	units, err := req.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 1 || units[0].Spec == nil || units[0].Workload != "sweepspec" {
		t.Fatalf("spec expansion: %+v", units)
	}
	fp, ok := units[0].Fingerprint()
	if !ok || fp == "" {
		t.Fatal("spec unit not fingerprintable")
	}
}

func TestExpandValidation(t *testing.T) {
	base := threeAxis()
	cases := []struct {
		name    string
		mutate  func(*Request)
		wantSub string
	}{
		{"empty workload axis", func(r *Request) { r.Workloads, r.Specs = nil, nil }, "empty workload axis"},
		{"empty config axis", func(r *Request) { r.Configs = nil }, "empty config axis"},
		{"unknown workload", func(r *Request) { r.Workloads = []string{"no-such"} }, "no-such"},
		{"unknown prefetcher", func(r *Request) { r.Configs[0].Prefetcher = "warp" }, "warp"},
		{"level out of range", func(r *Request) { r.Configs[0].Level = 9 }, "out of range"},
		{"fdp plus level", func(r *Request) { r.Configs[1].Level = 3 }, "both fdp and a static level"},
		{"none plus level", func(r *Request) { r.Configs[2].Level = 2 }, "level without a prefetcher"},
		{"duplicate labels", func(r *Request) { r.Configs[1].Label = "stream-L5" }, "duplicate config label"},
		{"blank workload", func(r *Request) { r.Workloads = []string{" "} }, "empty workload name"},
		{"null spec", func(r *Request) { r.Specs = []*spec.Spec{nil} }, "null spec"},
		{"oversized grid", func(r *Request) {
			r.Seeds = make([]uint64, MaxJobs)
			for i := range r.Seeds {
				r.Seeds[i] = uint64(i + 1)
			}
		}, "above the"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := threeAxis()
			tc.mutate(&req)
			_, err := req.Expand()
			if err == nil {
				t.Fatal("Expand accepted an invalid request")
			}
			if !errors.Is(err, ErrInvalid) {
				t.Fatalf("error %v does not wrap ErrInvalid", err)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q lacks %q", err, tc.wantSub)
			}
		})
	}
	_ = base

	// Multi-lane specs cannot run as sweep cells.
	multi := &spec.Spec{
		Name: "multilane",
		Phases: []spec.Phase{{
			Clients: []spec.Client{
				{Lane: 0, Pattern: spec.Pattern{Kind: spec.KindStride}},
				{Lane: 1, Pattern: spec.Pattern{Kind: spec.KindStride}},
			},
		}},
	}
	req := Request{Specs: []*spec.Spec{multi}, Configs: []ConfigAxis{{}}}
	if _, err := req.Expand(); err == nil || !errors.Is(err, ErrInvalid) {
		t.Fatalf("multi-lane spec accepted: %v", err)
	}

	// ErrUnknownTenant is part of the invalid family (exit code 2, HTTP 400).
	if !errors.Is(ErrUnknownTenant, ErrInvalid) {
		t.Fatal("ErrUnknownTenant does not wrap ErrInvalid")
	}
}

func TestExpandDefaults(t *testing.T) {
	req := Request{Workloads: []string{"seqstream"}, Configs: []ConfigAxis{{}}}
	units, err := req.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 1 {
		t.Fatalf("expanded %d, want 1", len(units))
	}
	u := units[0]
	if u.Seed != 1 || u.Cfg.Prefetcher != sim.PrefStream || u.Cfg.StaticLevel != 5 {
		t.Fatalf("defaults not applied: %+v", u.Cfg)
	}
	if u.Cfg.MaxInsts != sim.Default().MaxInsts {
		t.Fatalf("MaxInsts = %d, want simulator default", u.Cfg.MaxInsts)
	}
}

func TestSummarize(t *testing.T) {
	cells := []Cell{
		{State: "done", IPC: 1.0, BPKI: 4.0, CacheHit: true},
		{State: "done", IPC: 3.0, BPKI: 8.0},
		{State: "running"},
		{State: "queued"},
		{State: "failed"},
		{State: "cancelled"},
	}
	s := Summarize(cells)
	want := Summary{Total: 6, Queued: 1, Running: 1, Done: 2, Failed: 1, Cancelled: 1,
		CacheHits: 1, MeanIPC: 2.0, MeanBPKI: 6.0}
	if s != want {
		t.Fatalf("Summarize = %+v, want %+v", s, want)
	}
	if s.Terminal() {
		t.Fatal("non-terminal summary reported terminal")
	}
	if !(Summary{Total: 2, Done: 1, Failed: 1}).Terminal() {
		t.Fatal("terminal summary not recognized")
	}
}

func TestTables(t *testing.T) {
	cells := []Cell{
		{Workload: "seqstream", Config: "stream-L5", Seed: 1, State: "done", IPC: 1.234, BPKI: 5.678},
		{Workload: "seqstream", Config: "stream-fdp", Seed: 1, State: "running"},
		{Workload: "chaserand", Config: "stream-L5", Seed: 1, State: "failed"},
		{Workload: "chaserand", Config: "stream-fdp", Seed: 1, State: "done", IPC: 0.5, BPKI: 1.5},
	}
	tables := Tables("demo", cells)
	if len(tables) != 2 {
		t.Fatalf("got %d tables, want 2 (IPC, BPKI)", len(tables))
	}
	ipc := tables[0].String()
	for _, want := range []string{"demo — IPC", "stream-L5", "stream-fdp", "seqstream", "1.234", "-", "x"} {
		if !strings.Contains(ipc, want) {
			t.Fatalf("IPC table lacks %q:\n%s", want, ipc)
		}
	}
	bpki := tables[1].String()
	if !strings.Contains(bpki, "5.678") || !strings.Contains(bpki, "demo — BPKI") {
		t.Fatalf("BPKI table:\n%s", bpki)
	}

	// Multi-seed sweeps disambiguate rows with the seed.
	cells = append(cells, Cell{Workload: "seqstream", Config: "stream-L5", Seed: 2, State: "done", IPC: 2})
	if got := Tables("demo", cells)[0].String(); !strings.Contains(got, "seqstream/s2") {
		t.Fatalf("multi-seed rows not labeled:\n%s", got)
	}
}
