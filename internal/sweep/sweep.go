// Package sweep turns one declarative parameter grid into the set of
// simulation jobs that reproduces a paper-scale evaluation: workloads (or
// declarative WorkloadSpecs) × prefetcher configurations × seeds, the
// cross-product semantics the harness uses for its experiment grids
// (labeled/SpecGrid), expressed as a JSON request a client POSTs to
// fdpserved once instead of thousands of times.
//
// The package is pure grid logic — expansion, validation, aggregation,
// merged-table rendering — with no scheduling or HTTP in it; the service
// layer (internal/service) owns the sweep lifecycle, per-tenant fair
// queueing and the worker fleet, and leans on the fingerprint machinery
// to deduplicate expanded units within and across sweeps.
package sweep

import (
	"errors"
	"fmt"
	"strings"

	"fdpsim/internal/control"
	"fdpsim/internal/sim"
	"fdpsim/internal/workload/spec"
)

// ErrInvalid reports a sweep definition the grid machinery rejects: a bad
// axis value, an empty grid, a duplicate label, a grid beyond MaxJobs.
// The CLI exit-code table maps it — like spec.ErrInvalid — to the usage
// exit code 2, and the HTTP layer to 400.
var ErrInvalid = errors.New("sweep: invalid sweep definition")

// ErrUnknownTenant reports a sweep or job naming a tenant the scheduler's
// roster does not know. It wraps ErrInvalid, so both map to usage errors.
var ErrUnknownTenant = fmt.Errorf("%w: unknown tenant", ErrInvalid)

// MaxJobs bounds one sweep's expanded grid. Sweeps are admitted whole
// (their jobs bypass the per-tenant queued quota so a grid larger than a
// quota is still schedulable), so the expansion itself must be bounded.
const MaxJobs = 4096

// Request is the POST /v1/sweeps body: a parameter grid plus shared
// sizing. The expanded grid is the cross product
//
//	(workloads ∪ specs) × configs × seeds
//
// matching the harness's labeled/SpecGrid semantics: every workload runs
// under every configuration axis at every seed.
type Request struct {
	// Name labels the sweep in listings and result tables. Optional.
	Name string `json:"name,omitempty"`
	// Tenant attributes the sweep's jobs to a scheduler tenant for fair
	// queueing and quotas. Empty means the default tenant.
	Tenant string `json:"tenant,omitempty"`
	// Priority orders this sweep's jobs against the tenant's other work
	// (higher runs sooner; default 0).
	Priority int `json:"priority,omitempty"`

	// Workloads are registered workload names (see fdpsim.WorkloadList).
	Workloads []string `json:"workloads,omitempty"`
	// Specs are declarative WorkloadSpecs (docs/WORKLOADS.md schema)
	// swept exactly like named workloads. Single-lane specs only.
	Specs []*spec.Spec `json:"specs,omitempty"`
	// Configs is the prefetcher-configuration axis. Required.
	Configs []ConfigAxis `json:"configs"`
	// Seeds replicates every cell at each seed. Empty means [1].
	Seeds []uint64 `json:"seeds,omitempty"`

	// Shared sizing, applied to every cell (zero keeps the simulator
	// defaults: 1M instructions, no warmup).
	Insts     uint64 `json:"insts,omitempty"`
	Warmup    uint64 `json:"warmup,omitempty"`
	TInterval uint64 `json:"tinterval,omitempty"`
	// Attribution enables the cycle-accounting layer on every cell.
	Attribution bool `json:"attribution,omitempty"`
	// Series records each cell's interval timeseries (internal/series),
	// queryable per job at GET /v1/jobs/{id}/series and merged across the
	// sweep at GET /v1/sweeps/{id}/series. It does not enter the cell
	// fingerprint: a series-enabled sweep still hits the result cache.
	Series bool `json:"series,omitempty"`
}

// ConfigAxis is one point on the configuration axis, assembling a
// simulator configuration exactly like the fdpsim CLI's flags and the
// single-job API's simple fields.
type ConfigAxis struct {
	// Label names the column in results. Empty derives one from the
	// fields ("stream-L5", "ghb-fdp", "none").
	Label string `json:"label,omitempty"`
	// Prefetcher is the hardware prefetcher kind. Empty means "stream".
	Prefetcher string `json:"prefetcher,omitempty"`
	// Level pins a conventional prefetcher at a Table 1 aggressiveness
	// (1..5; 0 means 5). Must be 0 when FDP is set or Prefetcher is none.
	Level int `json:"level,omitempty"`
	// FDP runs the prefetcher under full feedback control.
	FDP bool `json:"fdp,omitempty"`
	// DynamicInsertion enables dynamic insertion on its own.
	DynamicInsertion bool `json:"dynamic_insertion,omitempty"`
	// Controller selects the feedback decision policy for an FDP axis
	// (see internal/control: "fdp", "static-1".."static-5",
	// "dspatch-dual", "tree"). Empty keeps the paper's Table 2 policy;
	// requires FDP. One sweep listing several controllers as separate
	// axes produces the merged head-to-head table per controller.
	Controller string `json:"controller,omitempty"`
}

// label returns the axis's explicit or derived column label.
func (a ConfigAxis) label() string {
	if a.Label != "" {
		return a.Label
	}
	kind := a.Prefetcher
	if kind == "" {
		kind = string(sim.PrefStream)
	}
	switch {
	case kind == string(sim.PrefNone):
		return "none"
	case a.FDP:
		if a.Controller != "" && a.Controller != "fdp" {
			return kind + "-" + a.Controller
		}
		return kind + "-fdp"
	default:
		level := a.Level
		if level == 0 {
			level = 5
		}
		s := fmt.Sprintf("%s-L%d", kind, level)
		if a.DynamicInsertion {
			s += "+dynins"
		}
		return s
	}
}

// build assembles the axis's simulator configuration (before the shared
// sizing and the workload are stamped on).
func (a ConfigAxis) build() (sim.Config, error) {
	kind := sim.PrefetcherKind(a.Prefetcher)
	if a.Prefetcher == "" {
		kind = sim.PrefStream
	}
	known := false
	for _, k := range sim.PrefetcherKinds() {
		if k == kind {
			known = true
			break
		}
	}
	if !known {
		return sim.Config{}, fmt.Errorf("%w: unknown prefetcher %q in config axis %q", ErrInvalid, a.Prefetcher, a.label())
	}
	if a.Level < 0 || a.Level > 5 {
		return sim.Config{}, fmt.Errorf("%w: level %d out of range 0..5 in config axis %q", ErrInvalid, a.Level, a.label())
	}
	if a.Controller != "" && !a.FDP {
		return sim.Config{}, fmt.Errorf("%w: config axis %q sets a controller without fdp", ErrInvalid, a.label())
	}
	if !control.Known(a.Controller) {
		return sim.Config{}, fmt.Errorf("%w: unknown controller %q in config axis %q (have %v)", ErrInvalid, a.Controller, a.label(), control.Names())
	}
	var cfg sim.Config
	switch {
	case a.FDP:
		if a.Level != 0 {
			return sim.Config{}, fmt.Errorf("%w: config axis %q sets both fdp and a static level", ErrInvalid, a.label())
		}
		cfg = sim.WithFDP(kind)
		cfg.Controller = a.Controller
	case kind == sim.PrefNone:
		if a.Level != 0 {
			return sim.Config{}, fmt.Errorf("%w: config axis %q sets a level without a prefetcher", ErrInvalid, a.label())
		}
		cfg = sim.Default()
	default:
		level := a.Level
		if level == 0 {
			level = 5
		}
		cfg = sim.Conventional(kind, level)
	}
	if a.DynamicInsertion {
		cfg.FDP.DynamicInsertion = true
	}
	return cfg, nil
}

// Unit is one expanded grid cell: a fully assembled simulation the
// service submits as one job. Units with identical fingerprints (e.g. a
// workload listed twice, or overlapping sweeps) are distinct cells that
// share one execution.
type Unit struct {
	// Workload is the cell's row label: the workload or spec name.
	Workload string
	// Config is the cell's column label (the axis label).
	Config string
	// Seed replicates rows; the same (workload, config) at two seeds is
	// two cells.
	Seed uint64

	Cfg  sim.Config
	Spec *spec.Spec
}

// Key identifies the cell within its sweep.
func (u Unit) Key() string {
	return fmt.Sprintf("%s\x00%s\x00%d", u.Workload, u.Config, u.Seed)
}

// Expand validates the request and produces the full grid, in a stable
// order (workloads, then specs; configs within workload; seeds within
// config). Every failure wraps ErrInvalid.
func (r *Request) Expand() ([]Unit, error) {
	if len(r.Workloads) == 0 && len(r.Specs) == 0 {
		return nil, fmt.Errorf("%w: empty workload axis (need workloads or specs)", ErrInvalid)
	}
	if len(r.Configs) == 0 {
		return nil, fmt.Errorf("%w: empty config axis", ErrInvalid)
	}
	seeds := r.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{1}
	}

	rows := len(r.Workloads) + len(r.Specs)
	total := rows * len(r.Configs) * len(seeds)
	if total > MaxJobs {
		return nil, fmt.Errorf("%w: grid expands to %d jobs, above the %d-job bound", ErrInvalid, total, MaxJobs)
	}

	type column struct {
		label string
		cfg   sim.Config
	}
	cols := make([]column, 0, len(r.Configs))
	seen := make(map[string]bool, len(r.Configs))
	for _, a := range r.Configs {
		cfg, err := a.build()
		if err != nil {
			return nil, err
		}
		label := a.label()
		if seen[label] {
			return nil, fmt.Errorf("%w: duplicate config label %q", ErrInvalid, label)
		}
		seen[label] = true
		cols = append(cols, column{label: label, cfg: cfg})
	}

	for _, sp := range r.Specs {
		if sp == nil {
			return nil, fmt.Errorf("%w: null spec in specs axis", ErrInvalid)
		}
		if err := sp.Validate(); err != nil {
			return nil, fmt.Errorf("%w: spec %q: %w", ErrInvalid, sp.Name, err)
		}
		if lanes := sp.Lanes(); lanes != 1 {
			return nil, fmt.Errorf("%w: spec %q has %d lanes; sweeps run single-lane specs only", ErrInvalid, sp.Name, lanes)
		}
	}

	units := make([]Unit, 0, total)
	addRow := func(name string, sp *spec.Spec) error {
		for _, col := range cols {
			for _, seed := range seeds {
				cfg := col.cfg
				cfg.Workload = name
				cfg.Seed = seed
				if r.Insts != 0 {
					cfg.MaxInsts = r.Insts
				}
				if r.Warmup != 0 {
					cfg.WarmupInsts = r.Warmup
				}
				if r.TInterval != 0 {
					cfg.FDP.TInterval = r.TInterval
				}
				cfg.Attribution = r.Attribution
				if sp == nil {
					if err := cfg.ValidateJob(); err != nil {
						return fmt.Errorf("%w: workload %q: %w", ErrInvalid, name, err)
					}
				} else if err := sim.ValidateSpecJob(cfg, sp); err != nil {
					return fmt.Errorf("%w: spec %q: %w", ErrInvalid, name, err)
				}
				units = append(units, Unit{Workload: name, Config: col.label, Seed: seed, Cfg: cfg, Spec: sp})
			}
		}
		return nil
	}
	for _, w := range r.Workloads {
		if strings.TrimSpace(w) == "" {
			return nil, fmt.Errorf("%w: empty workload name", ErrInvalid)
		}
		if err := addRow(w, nil); err != nil {
			return nil, err
		}
	}
	for _, sp := range r.Specs {
		if err := addRow(sp.Name, sp); err != nil {
			return nil, err
		}
	}
	return units, nil
}

// Fingerprint returns the unit's deduplication key: the domain-separated
// spec fingerprint for spec cells, the plain configuration fingerprint
// otherwise — the same keys the job service, the harness memo and the
// on-disk store already use, so sweep cells share their caches.
func (u Unit) Fingerprint() (string, bool) {
	if u.Spec != nil {
		return sim.FingerprintSpec(u.Cfg, u.Spec)
	}
	return sim.Fingerprint(u.Cfg)
}
