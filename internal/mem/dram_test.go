package mem

import (
	"testing"
	"testing/quick"
)

// drain ticks the model until quiet, returning the completion cycles seen.
func drain(d *DRAM, from, until uint64) {
	for c := from; c <= until && d.Busy(); c++ {
		d.Tick(c)
	}
}

func TestMinimumLatency(t *testing.T) {
	cfg := DefaultConfig()
	d := New(cfg)
	var done uint64
	r := &Request{Block: 0, Kind: Demand, Done: func(r *Request) { done = r.Finished }}
	d.Enqueue(r, 10)
	drain(d, 10, 10000)
	// First access: row conflict; latency = Cmd + RowConflict + Transfer.
	want := 10 + cfg.CmdLatency + cfg.RowConflict + cfg.Transfer
	if done != want {
		t.Fatalf("first-access completion = %d, want %d", done, want)
	}
}

func TestRowHitFasterThanConflict(t *testing.T) {
	cfg := DefaultConfig()
	d := New(cfg)
	var first, second uint64
	// Same bank, same row: the second access is a row hit.
	d.Enqueue(&Request{Block: 0, Kind: Demand, Done: func(r *Request) { first = r.Finished }}, 0)
	drain(d, 0, 20000)
	d.Enqueue(&Request{Block: 32, Kind: Demand, Done: func(r *Request) { second = r.Finished }}, first)
	drain(d, first, 20000)
	lat1 := first - 0
	lat2 := second - first
	if lat2 >= lat1 {
		t.Fatalf("row hit latency %d not faster than conflict %d", lat2, lat1)
	}
	st := d.Stats()
	if st.RowHits != 1 || st.RowMisses != 1 {
		t.Fatalf("row stats: hits=%d misses=%d", st.RowHits, st.RowMisses)
	}
}

func TestBankConflictSerializes(t *testing.T) {
	cfg := DefaultConfig()
	d := New(cfg)
	var t1, t2 uint64
	// Two requests to the same bank but different rows: the second must
	// wait for the bank's conflict occupancy.
	blockA := uint64(0)
	blockB := uint64(cfg.Banks * cfg.BlocksPerRow) // same bank, next row
	d.Enqueue(&Request{Block: blockA, Kind: Demand, Done: func(r *Request) { t1 = r.Started }}, 0)
	d.Enqueue(&Request{Block: blockB, Kind: Demand, Done: func(r *Request) { t2 = r.Started }}, 0)
	drain(d, 0, 30000)
	if t2 < t1+cfg.BusyConflict {
		t.Fatalf("second start %d < first %d + busy %d", t2, t1, cfg.BusyConflict)
	}
}

func TestDifferentBanksOverlap(t *testing.T) {
	cfg := DefaultConfig()
	d := New(cfg)
	var starts []uint64
	for b := uint64(0); b < 4; b++ {
		d.Enqueue(&Request{Block: b, Kind: Demand, Done: func(r *Request) {
			starts = append(starts, r.Started)
		}}, 0)
	}
	drain(d, 0, 30000)
	if len(starts) != 4 {
		t.Fatalf("completed %d of 4", len(starts))
	}
	// One command per cycle: starts are consecutive-ish, far less than
	// serialized bank occupancy.
	for _, s := range starts {
		if s > uint64(cfg.CmdLatency)+10 {
			t.Fatalf("start %d indicates serialization across banks", s)
		}
	}
}

func TestBandwidthEnforced(t *testing.T) {
	cfg := DefaultConfig()
	d := New(cfg)
	const n = 20
	var last uint64
	for b := uint64(0); b < n; b++ {
		d.Enqueue(&Request{Block: b, Kind: Demand, Done: func(r *Request) {
			if r.Finished > last {
				last = r.Finished
			}
		}}, 0)
	}
	drain(d, 0, 100000)
	// n transfers cannot complete faster than n * Transfer cycles.
	if minSpan := uint64(n) * cfg.Transfer; last < minSpan {
		t.Fatalf("%d blocks done by cycle %d, violating the %d-cycle bus floor", n, last, minSpan)
	}
}

func TestDemandPriorityOverPrefetch(t *testing.T) {
	cfg := DefaultConfig()
	d := New(cfg)
	var prefStart, demandStart uint64
	// Enqueue a stack of prefetches first, then a demand; the demand must
	// start before the queued prefetches despite arriving later.
	for b := uint64(0); b < 8; b++ {
		blk := b
		d.Enqueue(&Request{Block: blk, Kind: Prefetch, Done: func(r *Request) {
			if r.Block == 7 {
				prefStart = r.Started
			}
		}}, 0)
	}
	d.Enqueue(&Request{Block: 100, Kind: Demand, Done: func(r *Request) { demandStart = r.Started }}, 1)
	drain(d, 0, 100000)
	if demandStart > prefStart {
		t.Fatalf("demand started at %d after last prefetch %d", demandStart, prefStart)
	}
}

func TestQueueCapacity(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueueCap = 4
	d := New(cfg)
	for b := uint64(0); b < 4; b++ {
		if !d.Enqueue(&Request{Block: b, Kind: Prefetch}, 0) {
			t.Fatalf("enqueue %d rejected below capacity", b)
		}
	}
	if d.CanEnqueue(Prefetch) {
		t.Fatal("CanEnqueue true at capacity")
	}
	if d.Enqueue(&Request{Block: 99, Kind: Prefetch}, 0) {
		t.Fatal("enqueue accepted over capacity")
	}
	if d.Stats().Dropped[Prefetch] != 1 {
		t.Fatalf("dropped = %d, want 1", d.Stats().Dropped[Prefetch])
	}
	if !d.CanEnqueue(Demand) {
		t.Fatal("demand queue affected by prefetch queue fill")
	}
}

func TestPromote(t *testing.T) {
	cfg := DefaultConfig()
	d := New(cfg)
	r := &Request{Block: 5, Kind: Prefetch, WasPrefetch: true}
	d.Enqueue(r, 0)
	if !d.Promote(5) {
		t.Fatal("Promote missed queued prefetch")
	}
	if d.QueueLen(Prefetch) != 0 || d.QueueLen(Demand) != 1 {
		t.Fatal("Promote did not move the request between queues")
	}
	if r.Kind != Demand || !r.WasPrefetch {
		t.Fatalf("promoted request state: %+v", r)
	}
	if d.Promote(5) {
		t.Fatal("second Promote found the request again")
	}
}

func TestWritebackBackpressurePromotion(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueueCap = 8
	d := New(cfg)
	// More than half the queue in writebacks flips the scheduling order so
	// writebacks drain ahead of prefetches.
	for b := uint64(0); b < 5; b++ {
		d.Enqueue(&Request{Block: b, Kind: Writeback}, 0)
	}
	var prefStarted uint64
	d.Enqueue(&Request{Block: 100, Kind: Prefetch, Done: func(r *Request) { prefStarted = r.Started }}, 0)
	wbStarts := 0
	d.OnStart = func(r *Request) {
		if r.Kind == Writeback && prefStarted == 0 {
			wbStarts++
		}
	}
	drain(d, 0, 100000)
	if wbStarts < 2 {
		t.Fatalf("only %d writebacks started before the prefetch", wbStarts)
	}
}

func TestOnStartFires(t *testing.T) {
	d := New(DefaultConfig())
	var kinds []Kind
	d.OnStart = func(r *Request) { kinds = append(kinds, r.Kind) }
	d.Enqueue(&Request{Block: 1, Kind: Demand}, 0)
	d.Enqueue(&Request{Block: 2, Kind: Writeback}, 0)
	drain(d, 0, 10000)
	if len(kinds) != 2 || kinds[0] != Demand || kinds[1] != Writeback {
		t.Fatalf("OnStart kinds = %v", kinds)
	}
	st := d.Stats()
	if st.Started[Demand] != 1 || st.Started[Writeback] != 1 {
		t.Fatalf("started stats = %v", st.Started)
	}
}

func TestKindString(t *testing.T) {
	if Demand.String() != "demand" || Prefetch.String() != "prefetch" || Writeback.String() != "writeback" {
		t.Fatal("kind strings wrong")
	}
	if Kind(9).String() != "unknown" {
		t.Fatal("unknown kind string wrong")
	}
}

func TestConfigValidation(t *testing.T) {
	for _, bad := range []Config{
		{Banks: 3, BlocksPerRow: 128},
		{Banks: 32, BlocksPerRow: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) did not panic", bad)
				}
			}()
			New(bad)
		}()
	}
}

// TestFIFOWithinPriority: demands complete in enqueue order when they hit
// distinct banks (FCFS with bank bypass must not reorder independents that
// are all startable).
func TestFIFOWithinPriority(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw%16) + 2
		d := New(DefaultConfig())
		var order []uint64
		for b := 0; b < n; b++ {
			d.Enqueue(&Request{Block: uint64(b), Kind: Demand, Done: func(r *Request) {
				order = append(order, r.Block)
			}}, 0)
		}
		drain(d, 0, 1_000_000)
		if len(order) != n {
			return false
		}
		for i := 1; i < len(order); i++ {
			if order[i] < order[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestLatencyAccounting: demand latency statistics accumulate.
func TestLatencyAccounting(t *testing.T) {
	d := New(DefaultConfig())
	d.Enqueue(&Request{Block: 1, Kind: Demand}, 0)
	d.Enqueue(&Request{Block: 2, Kind: Prefetch}, 0)
	drain(d, 0, 10000)
	st := d.Stats()
	if st.DemandCount != 1 || st.DemandLatencySum == 0 {
		t.Fatalf("latency stats: count=%d sum=%d", st.DemandCount, st.DemandLatencySum)
	}
}
