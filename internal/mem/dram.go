// Package mem models the off-chip memory system of the baseline processor
// (Table 3 of the paper): a split-transaction memory bus with enforced
// bandwidth, 32 DRAM banks with open-row buffers and bank-conflict timing,
// bounded request queues, and demand-first scheduling in which prefetch
// requests are given the lowest priority so they do not delay demand
// load/store requests.
package mem

import (
	"container/heap"

	"fdpsim/internal/cache"
)

// Kind classifies a bus request.
type Kind int

// Request kinds in descending scheduling priority (writebacks drain last
// unless their queue backs up).
const (
	Demand Kind = iota
	Prefetch
	Writeback
	numKinds
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Demand:
		return "demand"
	case Prefetch:
		return "prefetch"
	case Writeback:
		return "writeback"
	}
	return "unknown"
}

// Request is one memory transaction for a single cache block.
type Request struct {
	Block cache.Addr
	Kind  Kind
	// Owner identifies the requesting core when several cores share the
	// bus (multi-core mode); 0 otherwise.
	Owner int
	// WasPrefetch stays true across a late-prefetch promotion to demand
	// priority, so the bus-level prefetch accounting survives promotion.
	WasPrefetch bool
	Done        func(r *Request) // called when data is on-chip; nil for writebacks
	Enqueued    uint64
	Started     uint64 // cycle the request won the command bus
	Finished    uint64 // cycle the data transfer completed
	bank        int
	row         uint64
	// pooled marks requests drawn from the DRAM's free list via Acquire;
	// only those are recycled, so caller-constructed &Request{} values
	// (tests, external drivers) are never reused behind the caller's back.
	pooled bool
}

// Latency returns end-to-end cycles from enqueue to completion.
func (r *Request) Latency() uint64 { return r.Finished - r.Enqueued }

// Config holds the DRAM and bus timing parameters. The defaults reproduce
// the paper's 500-cycle minimum main-memory latency and 4.5 GB/s bus at a
// 4 GHz core clock (64 B / 4.5 GB/s ≈ 57 core cycles of data-bus occupancy
// per block).
type Config struct {
	Banks        int    // number of DRAM banks (power of two)
	BlocksPerRow int    // row-buffer size in cache blocks (power of two)
	CmdLatency   uint64 // fixed command/decode latency before the bank access
	RowHit       uint64 // access latency when the open row matches
	RowConflict  uint64 // access latency on a row-buffer conflict
	// BusyHit/BusyConflict are how long the access occupies the bank
	// (blocking other requests to it) — much shorter than the end-to-end
	// latency, which includes command and wire time.
	BusyHit      uint64
	BusyConflict uint64
	Transfer     uint64 // data-bus occupancy per block (bandwidth limit)
	QueueCap     int    // per-kind request queue capacity
	ScanWindow   int    // how deep the scheduler looks past the queue head
}

// DefaultConfig returns the Table 3 baseline memory system.
func DefaultConfig() Config {
	return Config{
		Banks:        32,
		BlocksPerRow: 128, // 8 KB rows of 64 B blocks
		CmdLatency:   36,
		RowHit:       397, // 36+397+57 = 490 + L2 lookup ≈ 500-cycle minimum
		RowConflict:  517,
		BusyHit:      24,  // a CAS burst
		BusyConflict: 160, // precharge + activate (tRC at 4 GHz)
		Transfer:     57,  // 64 B at 4.5 GB/s on a 4 GHz clock
		QueueCap:     128,
		ScanWindow:   16,
	}
}

type bank struct {
	freeAt  uint64
	openRow uint64
	hasOpen bool
}

// completion heap ordered by finish cycle.
type completionHeap []*Request

func (h completionHeap) Len() int            { return len(h) }
func (h completionHeap) Less(i, j int) bool  { return h[i].Finished < h[j].Finished }
func (h completionHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *completionHeap) Push(x interface{}) { *h = append(*h, x.(*Request)) }
func (h *completionHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}

// Stats counts bus-level activity.
type Stats struct {
	Started   [3]uint64 // requests that won the bus, by kind
	Dropped   [3]uint64 // enqueue rejections (queue full), by kind
	RowHits   uint64
	RowMisses uint64
	// LatencySum/LatencyCount give average demand latency.
	DemandLatencySum uint64
	DemandCount      uint64
}

// DRAM is the memory-system model. The owner enqueues requests and calls
// Tick once per core cycle; completions fire the request's Done callback.
type DRAM struct {
	cfg       Config
	bankMask  uint64
	bankShift uint
	rowShift  uint
	banks     []bank
	queues    [numKinds][]*Request
	busFreeAt uint64
	pending   completionHeap
	// OnStart fires when a request wins the command bus — the paper's
	// "goes out on the bus" moment used to count sent prefetches.
	OnStart func(r *Request)
	stats   Stats
	// freeReqs recycles completed pooled requests (see Acquire).
	freeReqs []*Request
	// nextSchedule memoizes a failed scheduler scan: no queued request can
	// win the command bus before this cycle, so Tick skips the scan
	// entirely until then. Any queue mutation (enqueue, promote, start)
	// resets it to zero, forcing a real scan. Purely an optimization — the
	// skipped scans are exactly the ones schedule proves would fail.
	nextSchedule uint64
}

// New constructs a DRAM model from the configuration.
func New(cfg Config) *DRAM {
	if cfg.Banks <= 0 || cfg.Banks&(cfg.Banks-1) != 0 {
		panic("mem: bank count must be a positive power of two")
	}
	if cfg.BlocksPerRow <= 0 || cfg.BlocksPerRow&(cfg.BlocksPerRow-1) != 0 {
		panic("mem: blocks per row must be a positive power of two")
	}
	d := &DRAM{cfg: cfg, banks: make([]bank, cfg.Banks)}
	d.bankMask = uint64(cfg.Banks - 1)
	for v := cfg.Banks; v > 1; v >>= 1 {
		d.bankShift++
	}
	for v := cfg.BlocksPerRow; v > 1; v >>= 1 {
		d.rowShift++
	}
	if cfg.ScanWindow <= 0 {
		d.cfg.ScanWindow = 1
	}
	// Pre-size every request-holding structure to its working depth so the
	// simulation loop never grows them: the queues to their cap, the
	// completion heap to a generous transfer backlog, and the request pool
	// to the worst-case in-flight population (all queues full plus the
	// backlog) — after which Acquire/release recycle without allocating.
	for k := range d.queues {
		d.queues[k] = make([]*Request, 0, d.cfg.QueueCap)
	}
	d.pending = make(completionHeap, 0, 64)
	d.freeReqs = make([]*Request, 0, 3*d.cfg.QueueCap+64)
	for i := 0; i < cap(d.freeReqs); i++ {
		d.freeReqs = append(d.freeReqs, &Request{pooled: true})
	}
	return d
}

// Config returns the timing configuration in use.
func (d *DRAM) Config() Config { return d.cfg }

// Stats returns a snapshot of bus-level statistics.
func (d *DRAM) Stats() Stats { return d.stats }

// QueueLen returns the occupancy of the queue for the given kind.
func (d *DRAM) QueueLen(k Kind) int { return len(d.queues[k]) }

// CanEnqueue reports whether a request of the given kind would be accepted.
func (d *DRAM) CanEnqueue(k Kind) bool { return len(d.queues[k]) < d.cfg.QueueCap }

// Acquire returns a zeroed Request from the DRAM's internal free list.
// Pooled requests are recycled automatically: after Done returns on
// completion (for writebacks, after the transfer finishes), or when
// Enqueue rejects them — in both cases the caller must not retain the
// pointer. Requests constructed directly with &Request{} are untouched by
// the pool and remain owned by their creator.
func (d *DRAM) Acquire() *Request {
	if n := len(d.freeReqs); n > 0 {
		r := d.freeReqs[n-1]
		d.freeReqs = d.freeReqs[:n-1]
		*r = Request{pooled: true}
		return r
	}
	return &Request{pooled: true}
}

// release returns a pooled request to the free list; a no-op for
// caller-constructed requests.
func (d *DRAM) release(r *Request) {
	if r.pooled {
		d.freeReqs = append(d.freeReqs, r)
	}
}

// Enqueue admits a request into its priority queue, stamping arrival at the
// given cycle. It returns false (and drops the request) when the queue is
// full; callers decide whether to retry. A rejected pooled request goes
// straight back to the free list, so it must not be re-submitted.
func (d *DRAM) Enqueue(r *Request, cycle uint64) bool {
	if len(d.queues[r.Kind]) >= d.cfg.QueueCap {
		d.stats.Dropped[r.Kind]++
		d.release(r)
		return false
	}
	r.Enqueued = cycle
	r.bank = int(r.Block & d.bankMask)
	r.row = (r.Block >> d.bankShift) >> d.rowShift
	d.queues[r.Kind] = append(d.queues[r.Kind], r)
	d.nextSchedule = 0 // new work invalidates the memoized scan
	return true
}

// Promote upgrades an in-queue prefetch for the block to demand priority,
// reporting whether the request was found (it may already have started).
func (d *DRAM) Promote(block cache.Addr) bool {
	q := d.queues[Prefetch]
	for i, r := range q {
		if r.Block == block {
			d.queues[Prefetch] = append(q[:i], q[i+1:]...)
			r.Kind = Demand
			d.queues[Demand] = append(d.queues[Demand], r)
			d.nextSchedule = 0 // the scan order changed
			return true
		}
	}
	return false
}

// Busy reports whether any request is queued or in flight.
func (d *DRAM) Busy() bool {
	return len(d.pending) > 0 ||
		len(d.queues[Demand]) > 0 || len(d.queues[Prefetch]) > 0 || len(d.queues[Writeback]) > 0
}

// Tick advances the model to the given cycle: it starts at most one new
// bank access (command-bus limit) and fires Done for every transfer that
// has completed by this cycle.
func (d *DRAM) Tick(cycle uint64) {
	d.schedule(cycle)
	for len(d.pending) > 0 && d.pending[0].Finished <= cycle {
		r := heap.Pop(&d.pending).(*Request)
		if r.Kind == Demand {
			d.stats.DemandLatencySum += r.Latency()
			d.stats.DemandCount++
		}
		if r.Done != nil {
			r.Done(r)
		}
		d.release(r)
	}
}

// order decides the scan order of the queues. Writebacks normally drain
// last, but once their queue is more than half full they are promoted ahead
// of prefetches so stores cannot back up indefinitely.
func (d *DRAM) order() [numKinds]Kind {
	if len(d.queues[Writeback]) > d.cfg.QueueCap/2 {
		return [numKinds]Kind{Demand, Writeback, Prefetch}
	}
	return [numKinds]Kind{Demand, Prefetch, Writeback}
}

func (d *DRAM) schedule(cycle uint64) {
	if cycle < d.nextSchedule {
		return // a prior scan proved nothing can start before nextSchedule
	}
	// earliest accumulates the soonest cycle any scanned entry could win
	// the bus. Within a queue arrivals are FIFO, so once entry j is not yet
	// past its command latency no later entry is either, and the break is
	// sound both for this scan and for the memoized lower bound.
	earliest := ^uint64(0)
	for _, k := range d.order() {
		q := d.queues[k]
		window := d.cfg.ScanWindow
		if window > len(q) {
			window = len(q)
		}
		for i := 0; i < window; i++ {
			r := q[i]
			if ready := r.Enqueued + d.cfg.CmdLatency; ready > cycle {
				if ready < earliest {
					earliest = ready
				}
				break // FIFO within a queue: later entries arrived later
			}
			b := &d.banks[r.bank]
			if b.freeAt > cycle {
				if b.freeAt < earliest {
					earliest = b.freeAt
				}
				continue
			}
			d.start(r, cycle)
			d.queues[k] = append(q[:i], q[i+1:]...)
			d.nextSchedule = 0 // the queue changed; rescan next cycle
			return             // one command per cycle
		}
	}
	d.nextSchedule = earliest
}

func (d *DRAM) start(r *Request, cycle uint64) {
	b := &d.banks[r.bank]
	latency, busy := d.cfg.RowConflict, d.cfg.BusyConflict
	if b.hasOpen && b.openRow == r.row {
		latency, busy = d.cfg.RowHit, d.cfg.BusyHit
		d.stats.RowHits++
	} else {
		d.stats.RowMisses++
	}
	b.openRow = r.row
	b.hasOpen = true
	b.freeAt = cycle + busy
	xferStart := cycle + latency
	if d.busFreeAt > xferStart {
		xferStart = d.busFreeAt
	}
	d.busFreeAt = xferStart + d.cfg.Transfer
	r.Started = cycle
	r.Finished = xferStart + d.cfg.Transfer
	d.stats.Started[r.Kind]++
	if d.OnStart != nil {
		d.OnStart(r)
	}
	heap.Push(&d.pending, r)
}
