package fdpsim

import (
	"errors"
	"reflect"
	"testing"
)

// The thin constructors are documented as equivalent to options-API calls;
// these round-trips pin that equivalence.
func TestNewConfigMatchesConstructors(t *testing.T) {
	cases := []struct {
		name string
		via  func() (Config, error)
		want Config
	}{
		{"default", func() (Config, error) { return NewConfig(PrefNone) }, Default()},
		{"conventional", func() (Config, error) {
			return NewConfig(PrefStream, WithFixedAggressiveness(5))
		}, Conventional(PrefStream, 5)},
		{"fdp", func() (Config, error) { return NewConfig(PrefGHB) }, WithFDP(PrefGHB)},
	}
	for _, tc := range cases {
		got, err := tc.via()
		if err != nil {
			t.Errorf("%s: NewConfig: %v", tc.name, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: NewConfig result diverges from constructor:\ngot  %+v\nwant %+v",
				tc.name, got, tc.want)
		}
	}
}

func TestNewConfigAppliesOptions(t *testing.T) {
	cfg, err := NewConfig(PrefStream,
		WithWorkload("chaserand"),
		WithInsts(123_456),
		WithWarmup(10_000),
		WithSeed(7),
		WithTInterval(512),
		WithInsertion(PosMID),
		WithFDPHistory(),
		WithMaxCycles(9_999_999),
		WithPrefetchCache(512, 8),
		WithPerStreamRamp(),
	)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Workload != "chaserand" || cfg.MaxInsts != 123_456 || cfg.WarmupInsts != 10_000 ||
		cfg.Seed != 7 || cfg.FDP.TInterval != 512 {
		t.Errorf("scalar options not applied: %+v", cfg)
	}
	if cfg.FDP.DynamicInsertion || cfg.FDP.StaticInsertion != PosMID {
		t.Errorf("WithInsertion: DynamicInsertion=%v StaticInsertion=%v",
			cfg.FDP.DynamicInsertion, cfg.FDP.StaticInsertion)
	}
	if !cfg.KeepFDPHistory || cfg.MaxCycles != 9_999_999 ||
		cfg.PrefCacheBlocks != 512 || cfg.PrefCacheWays != 8 || !cfg.PerStreamRamp {
		t.Errorf("flag options not applied: %+v", cfg)
	}
}

func TestNewConfigErrors(t *testing.T) {
	if _, err := NewConfig(PrefStream, WithWorkload("nope")); !errors.Is(err, ErrUnknownWorkload) {
		t.Errorf("unknown workload: err = %v, want ErrUnknownWorkload", err)
	}
	// PrefCustom without WithCustomPrefetcher is an invalid configuration.
	if _, err := NewConfig(PrefCustom); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("custom kind without instance: err = %v, want ErrInvalidConfig", err)
	}
	if _, err := NewConfig(PrefStream, WithFixedAggressiveness(9)); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("out-of-range level: err = %v, want ErrInvalidConfig", err)
	}
	// Wrapper semantics: the partially-built config still comes back.
	cfg, err := NewConfig(PrefStream, WithFixedAggressiveness(7))
	if err == nil || cfg.StaticLevel != 7 {
		t.Errorf("partial config: level=%d err=%v", cfg.StaticLevel, err)
	}
}

func TestWithProgressRoundTrip(t *testing.T) {
	called := false
	cfg, err := NewConfig(PrefStream, WithProgress(func(Snapshot) { called = true }))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Progress == nil {
		t.Fatal("WithProgress did not install the sink")
	}
	cfg.Progress(Snapshot{})
	if !called {
		t.Error("installed sink is not the supplied function")
	}
}
