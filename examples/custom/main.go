// Custom extension points: plug a user-defined prefetcher and a
// user-defined workload into the simulator through the public API.
//
// The prefetcher below is a deliberately naive "next-N on every miss"
// design. Running it with and without FDP shows the feedback mechanism is
// generic: FDP throttles any prefetcher that exposes the five-level
// aggressiveness scale, not just the paper's three.
//
//	go run ./examples/custom
package main

import (
	"fmt"
	"log"

	"fdpsim"
)

// naivePrefetcher prefetches the next 4*level blocks on every L2 miss —
// aggressive, simple, and wasteful on irregular access patterns.
type naivePrefetcher struct {
	level int
}

func (p *naivePrefetcher) Name() string { return "naive-next-n" }

func (p *naivePrefetcher) SetLevel(level int) {
	if level < 1 {
		level = 1
	}
	if level > 5 {
		level = 5
	}
	p.level = level
}

func (p *naivePrefetcher) Level() int { return p.level }

func (p *naivePrefetcher) Observe(ev *fdpsim.PrefetchEvent, out []uint64) []uint64 {
	if !ev.Miss {
		return out
	}
	n := 4 * p.level
	for i := 1; i <= n; i++ {
		out = append(out, ev.Block+uint64(i))
	}
	return out
}

// stridedSource is a custom workload: a simple strided sweep with a hot
// scratch region, defined entirely outside the library.
type stridedSource struct{ i uint64 }

func (s *stridedSource) Name() string { return "custom-strided" }

func (s *stridedSource) Next() fdpsim.MicroOp {
	s.i++
	switch s.i % 8 {
	case 0:
		return fdpsim.MicroOp{Kind: fdpsim.OpLoad, Addr: (s.i / 8) * 96, PC: 0x500000}
	case 4:
		return fdpsim.MicroOp{Kind: fdpsim.OpLoad, Addr: 1<<33 + (s.i/8)%2048*8, PC: 0x500004}
	default:
		return fdpsim.MicroOp{Kind: fdpsim.OpNop}
	}
}

func main() {
	const insts = 400_000

	run := func(label string, dynamic bool) {
		opts := []fdpsim.Option{
			fdpsim.WithCustomPrefetcher(&naivePrefetcher{level: 3}),
			fdpsim.WithInsts(insts),
			fdpsim.WithTInterval(2048),
		}
		if !dynamic {
			opts = append(opts, fdpsim.WithFixedAggressiveness(5))
		}
		cfg, err := fdpsim.NewConfig(fdpsim.PrefCustom, opts...)
		if err != nil {
			log.Fatal(err)
		}
		res, err := fdpsim.RunSource(cfg, &stridedSource{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s IPC=%.4f  BPKI=%6.1f  accuracy=%5.1f%%  final level=%d\n",
			label, res.IPC, res.BPKI, 100*res.Accuracy, res.FinalLevel)
	}

	fmt.Println("custom prefetcher + custom workload through the public API")
	run("naive next-N, very aggr", false)
	run("naive next-N under FDP", true)
}
