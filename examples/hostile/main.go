// Hostile-workload study: the paper's motivating failure case. On an
// mcf-like dependent pointer chase, a very aggressive stream prefetcher
// trains on short bursts, floods the bus with junk and evicts the
// program's hot set — losing half its performance. FDP detects the low
// accuracy and pollution, throttles to Very Conservative, inserts the
// remaining prefetches at LRU, and recovers nearly all of the loss while
// cutting bandwidth.
//
//	go run ./examples/hostile
package main

import (
	"fmt"
	"log"

	"fdpsim"
)

func main() {
	const workload = "chaserand"
	const insts = 800_000

	type row struct {
		label string
		cfg   fdpsim.Config
	}
	rows := []row{
		{"no prefetching", fdpsim.Default()},
		{"very conservative", fdpsim.Conventional(fdpsim.PrefStream, 1)},
		{"very aggressive", fdpsim.Conventional(fdpsim.PrefStream, 5)},
		{"FDP", fdpsim.WithFDP(fdpsim.PrefStream)},
	}

	fmt.Printf("workload %q: %s\n\n", workload, fdpsim.WorkloadAbout(workload))
	fmt.Printf("%-20s %8s %8s %10s %10s\n", "configuration", "IPC", "BPKI", "accuracy", "pollution")
	var fdpRes fdpsim.Result
	for _, r := range rows {
		r.cfg.Workload = workload
		r.cfg.MaxInsts = insts
		r.cfg.FDP.TInterval = 2048 // sample faster than the paper's 8192 for this short run
		res, err := fdpsim.Run(r.cfg)
		if err != nil {
			log.Fatalf("%s: %v", r.label, err)
		}
		fmt.Printf("%-20s %8.4f %8.1f %9.1f%% %9.1f%%\n",
			r.label, res.IPC, res.BPKI, 100*res.Accuracy, 100*res.Pollution)
		if r.label == "FDP" {
			fdpRes = res
		}
	}

	fmt.Printf("\nFDP adaptation over %d sampling intervals:\n  %s\n  %s\n",
		fdpRes.Intervals, fdpRes.LevelDist, fdpRes.InsertDist)
}
