// Hostile-workload study: the paper's motivating failure case. On an
// mcf-like dependent pointer chase, a very aggressive stream prefetcher
// trains on short bursts, floods the bus with junk and evicts the
// program's hot set — losing half its performance. FDP detects the low
// accuracy and pollution, throttles to Very Conservative, inserts the
// remaining prefetches at LRU, and recovers nearly all of the loss while
// cutting bandwidth.
//
//	go run ./examples/hostile
package main

import (
	"fmt"
	"log"

	"fdpsim"
)

func main() {
	const workload = "chaserand"
	const insts = 800_000

	type row struct {
		label string
		kind  fdpsim.PrefetcherKind
		extra []fdpsim.Option
	}
	rows := []row{
		{"no prefetching", fdpsim.PrefNone, nil},
		{"very conservative", fdpsim.PrefStream, []fdpsim.Option{fdpsim.WithFixedAggressiveness(1)}},
		{"very aggressive", fdpsim.PrefStream, []fdpsim.Option{fdpsim.WithFixedAggressiveness(5)}},
		{"FDP", fdpsim.PrefStream, nil},
	}

	fmt.Printf("workload %q: %s\n\n", workload, fdpsim.WorkloadAbout(workload))
	fmt.Printf("%-20s %8s %8s %10s %10s\n", "configuration", "IPC", "BPKI", "accuracy", "pollution")
	var fdpRes fdpsim.Result
	for _, r := range rows {
		opts := append([]fdpsim.Option{
			fdpsim.WithWorkload(workload),
			fdpsim.WithInsts(insts),
			// sample faster than the paper's 8192 for this short run
			fdpsim.WithTInterval(2048),
		}, r.extra...)
		cfg, err := fdpsim.NewConfig(r.kind, opts...)
		if err != nil {
			log.Fatalf("%s: %v", r.label, err)
		}
		res, err := fdpsim.Run(cfg)
		if err != nil {
			log.Fatalf("%s: %v", r.label, err)
		}
		fmt.Printf("%-20s %8.4f %8.1f %9.1f%% %9.1f%%\n",
			r.label, res.IPC, res.BPKI, 100*res.Accuracy, 100*res.Pollution)
		if r.label == "FDP" {
			fdpRes = res
		}
	}

	fmt.Printf("\nFDP adaptation over %d sampling intervals:\n  %s\n  %s\n",
		fdpRes.Intervals, fdpRes.LevelDist, fdpRes.InsertDist)
}
