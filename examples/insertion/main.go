// Insertion-policy study (the paper's Section 5.2): where in the L2's LRU
// stack should prefetched blocks land? MRU insertion keeps accurate
// prefetches alive longest; LRU insertion makes junk prefetches evict
// themselves. This example sweeps the four static positions plus Dynamic
// Insertion on a pollution-sensitive workload and a clean stream, showing
// why no static choice wins both.
//
//	go run ./examples/insertion
package main

import (
	"fmt"
	"log"

	"fdpsim"
)

func main() {
	const insts = 500_000
	positions := []struct {
		label string
		pos   fdpsim.InsertPos
	}{
		{"LRU", fdpsim.PosLRU},
		{"LRU-4", fdpsim.PosLRU4},
		{"MID", fdpsim.PosMID},
		{"MRU", fdpsim.PosMRU},
	}

	for _, workload := range []string{"hotcold", "seqstream"} {
		fmt.Printf("workload %q: %s\n", workload, fdpsim.WorkloadAbout(workload))
		for _, p := range positions {
			cfg, err := fdpsim.NewConfig(fdpsim.PrefStream,
				fdpsim.WithWorkload(workload),
				fdpsim.WithInsts(insts),
				fdpsim.WithFixedAggressiveness(5),
				fdpsim.WithInsertion(p.pos))
			if err != nil {
				log.Fatal(err)
			}
			res, err := fdpsim.Run(cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  insert at %-6s IPC=%.4f  BPKI=%6.1f\n", p.label, res.IPC, res.BPKI)
		}
		cfg, err := fdpsim.NewConfig(fdpsim.PrefStream,
			fdpsim.WithWorkload(workload),
			fdpsim.WithInsts(insts),
			fdpsim.WithFixedAggressiveness(5),
			fdpsim.WithTInterval(2048))
		if err != nil {
			log.Fatal(err)
		}
		cfg.FDP.DynamicInsertion = true // Dynamic Insertion alone, level stays pinned
		res, err := fdpsim.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  dynamic (FDP)    IPC=%.4f  BPKI=%6.1f   chosen: %s\n\n",
			res.IPC, res.BPKI, res.InsertDist)
	}
}
