// Multi-core study: the paper's introduction argues bandwidth-efficient
// prefetching matters most when several cores share the memory bus. Here
// a streaming core and a prefetch-hostile core contend for one 4.5 GB/s
// bus. With conventional very aggressive prefetching on both cores, the
// hostile core's junk floods the shared queues and it is starved; with
// per-core FDP the junk is throttled, the victim core speeds up, and
// total bus traffic drops by about a third.
//
//	go run ./examples/multicore
package main

import (
	"fmt"
	"log"

	"fdpsim"
)

func main() {
	const perCoreInsts = 200_000

	run := func(label string, fdp bool) {
		var mc fdpsim.MultiConfig
		for _, w := range []string{"seqstream", "chaserand"} {
			opts := []fdpsim.Option{
				fdpsim.WithWorkload(w),
				fdpsim.WithInsts(perCoreInsts),
			}
			if fdp {
				opts = append(opts, fdpsim.WithTInterval(2048))
			} else {
				opts = append(opts, fdpsim.WithFixedAggressiveness(5))
			}
			cfg, err := fdpsim.NewConfig(fdpsim.PrefStream, opts...)
			if err != nil {
				log.Fatal(err)
			}
			mc.Cores = append(mc.Cores, cfg)
		}
		res, err := fdpsim.RunMulti(mc)
		if err != nil {
			log.Fatal(err)
		}
		var totalInsts uint64
		for _, c := range res.Cores {
			totalInsts += c.Counters.Retired
		}
		fmt.Printf("%s\n", label)
		for _, c := range res.Cores {
			fmt.Printf("  core %-11s IPC=%.4f  BPKI=%6.1f  level=%d\n",
				c.Workload, c.IPC, c.BPKI, c.FinalLevel)
		}
		fmt.Printf("  total bus transactions per 1000 insts: %.1f\n\n",
			1000*float64(res.TotalBusAccesses)/float64(totalInsts))
	}

	run("conventional very aggressive prefetching on both cores:", false)
	run("per-core feedback directed prefetching:", true)
}
