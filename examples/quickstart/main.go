// Quickstart: run the paper's headline comparison on one workload — no
// prefetching vs. a conventional very aggressive stream prefetcher vs.
// full Feedback Directed Prefetching — and print IPC, bandwidth and the
// prefetcher-quality metrics FDP estimates in hardware.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"fdpsim"
)

func main() {
	const workload = "seqstream"
	const insts = 500_000

	run := func(label string, kind fdpsim.PrefetcherKind, extra ...fdpsim.Option) fdpsim.Result {
		opts := append([]fdpsim.Option{
			fdpsim.WithWorkload(workload),
			fdpsim.WithInsts(insts),
		}, extra...)
		cfg, err := fdpsim.NewConfig(kind, opts...)
		if err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		res, err := fdpsim.Run(cfg)
		if err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		fmt.Printf("%-22s IPC=%.3f  BPKI=%5.1f  accuracy=%5.1f%%  lateness=%5.1f%%\n",
			label, res.IPC, res.BPKI, 100*res.Accuracy, 100*res.Lateness)
		return res
	}

	fmt.Printf("workload %q: %s\n\n", workload, fdpsim.WorkloadAbout(workload))
	base := run("no prefetching", fdpsim.PrefNone)
	va := run("very aggressive", fdpsim.PrefStream, fdpsim.WithFixedAggressiveness(5))
	fdp := run("FDP", fdpsim.PrefStream)

	fmt.Printf("\nprefetching speedup: %+.1f%%   FDP vs. conventional: %+.1f%% IPC, %+.1f%% bandwidth\n",
		100*(va.IPC-base.IPC)/base.IPC,
		100*(fdp.IPC-va.IPC)/va.IPC,
		100*(fdp.BPKI-va.BPKI)/va.BPKI)
}
