package fdpsim

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
)

// Example demonstrates the README quickstart: one FDP run on the
// prefetch-hostile chase, reporting the metrics FDP estimates in hardware.
func Example() {
	cfg := WithFDP(PrefStream)
	cfg.Workload = "chaserand"
	cfg.MaxInsts = 100_000
	cfg.FDP.TInterval = 1024
	res, err := Run(cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("accuracy below 40%%: %v\n", res.Accuracy < 0.40)
	fmt.Printf("throttled below Middle: %v\n", res.FinalLevel < 3)
	// Output:
	// accuracy below 40%: true
	// throttled below Middle: true
}

// ExampleRunMulti demonstrates a two-core run on the shared bus.
func ExampleRunMulti() {
	var mc MultiConfig
	for _, w := range []string{"seqstream", "tinyloop"} {
		cfg := Conventional(PrefStream, 5)
		cfg.Workload = w
		cfg.MaxInsts = 50_000
		mc.Cores = append(mc.Cores, cfg)
	}
	res, err := RunMulti(mc)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("cores: %d, both progressed: %v\n",
		len(res.Cores), res.Cores[0].IPC > 0 && res.Cores[1].IPC > 0)
	// Output:
	// cores: 2, both progressed: true
}

func TestFacadeWorkloadLists(t *testing.T) {
	all := Workloads()
	mi := MemoryIntensiveWorkloads()
	lp := LowPotentialWorkloads()
	if len(mi) != 17 || len(lp) != 9 || len(all) != 26 {
		t.Fatalf("workload sets: %d mem-intensive, %d low-potential, %d total", len(mi), len(lp), len(all))
	}
	for _, w := range all {
		if WorkloadAbout(w) == "" {
			t.Errorf("workload %s undescribed", w)
		}
	}
}

func TestFacadeRun(t *testing.T) {
	cfg := WithFDP(PrefStream)
	cfg.Workload = "regionwalk"
	cfg.MaxInsts = 30_000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0 || res.Workload != "regionwalk" || res.Prefetcher != "stream" {
		t.Fatalf("result = %+v", res)
	}
}

func TestFacadeRunSourceWithCustomPrefetcher(t *testing.T) {
	cfg := Conventional(PrefCustom, 5)
	cfg.Custom = &tagAlong{}
	cfg.MaxInsts = 20_000
	res, err := RunSource(cfg, &rampSource{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.PrefSent == 0 {
		t.Fatal("custom prefetcher sent nothing")
	}
}

func TestFacadeCustomRequiresInstance(t *testing.T) {
	cfg := Conventional(PrefCustom, 5)
	cfg.Workload = "seqstream"
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "Custom") {
		t.Fatalf("missing Custom accepted: %v", err)
	}
}

// tagAlong prefetches the next block on every miss.
type tagAlong struct{ level int }

func (p *tagAlong) Name() string       { return "tagalong" }
func (p *tagAlong) SetLevel(level int) { p.level = level }
func (p *tagAlong) Level() int         { return p.level }
func (p *tagAlong) Observe(ev *PrefetchEvent, out []uint64) []uint64 {
	if !ev.Miss {
		return out
	}
	return append(out, ev.Block+1)
}

// rampSource emits one streaming load every fourth op.
type rampSource struct{ i uint64 }

func (s *rampSource) Name() string { return "ramp" }
func (s *rampSource) Next() MicroOp {
	s.i++
	if s.i%4 == 0 {
		return MicroOp{Kind: OpLoad, Addr: s.i * 16, PC: 0x600000}
	}
	return MicroOp{Kind: OpNop}
}

// TestFacadeWorkloadList covers the tag-based registry view and its
// agreement with the deprecated name-list functions.
func TestFacadeWorkloadList(t *testing.T) {
	all := WorkloadList()
	if len(all) != len(Workloads()) {
		t.Fatalf("WorkloadList()=%d, Workloads()=%d", len(all), len(Workloads()))
	}
	if got := WorkloadList(WorkloadTagMemIntensive); len(got) != len(MemoryIntensiveWorkloads()) {
		t.Fatalf("mem-intensive: %d via tags, %d via legacy", len(got), len(MemoryIntensiveWorkloads()))
	}
	if got := WorkloadList(WorkloadTagBuiltin, WorkloadTagLowPotential); len(got) != 9 {
		t.Fatalf("AND filter: %d, want 9", len(got))
	}
	for _, info := range all {
		if info.Name == "" || info.About == "" || len(info.Tags) == 0 {
			t.Fatalf("incomplete WorkloadInfo: %+v", info)
		}
	}
}

// TestFacadeRunSpec drives a WorkloadSpec through the public facade:
// parse from YAML, fingerprint, run, reproduce.
func TestFacadeRunSpec(t *testing.T) {
	sp, err := ParseSpec([]byte(`
name: facade.mix
phases:
  - clients:
      - weight: 2
        pattern:
          kind: stride
          footprint_kb: 1024
          gap: 1
      - burst_on: 2
        burst_off: 6
        pattern:
          kind: chase
          footprint_kb: 512
`))
	if err != nil {
		t.Fatal(err)
	}
	cfg := WithFDP(PrefStream)
	cfg.MaxInsts = 40_000
	cfg.FDP.TInterval = 256
	fp, ok := SpecFingerprint(cfg, sp)
	if !ok || fp == "" {
		t.Fatal("SpecFingerprint failed")
	}
	res, err := RunSpec(context.Background(), cfg, sp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Workload != "facade.mix" || res.IPC <= 0 {
		t.Fatalf("unexpected result: workload=%q IPC=%v", res.Workload, res.IPC)
	}
	res2, err := RunSpec(context.Background(), cfg, sp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters != res2.Counters {
		t.Fatal("facade spec run not reproducible")
	}
	if _, err := ParseSpec([]byte(`name: "Bad Name"`)); !errors.Is(err, ErrInvalidSpec) {
		t.Fatalf("invalid spec error: %v", err)
	}
}
