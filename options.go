package fdpsim

import (
	"fmt"

	"fdpsim/internal/sim"
	"fdpsim/internal/workload"
)

// Option mutates a Config under construction. Options are applied in
// order, so later options win; range and consistency checks run once at
// the end of NewConfig via Config.Validate.
type Option func(*Config) error

// NewConfig assembles a simulation configuration with functional options.
// The base is the paper's Table 3 processor: with PrefNone it equals
// Default(); with any other prefetcher kind it equals WithFDP(kind), i.e.
// the prefetcher runs under full FDP control unless WithFixedAggressiveness
// pins it. The assembled configuration is validated before being returned;
// on failure the partially-built Config is returned alongside an error
// matching ErrInvalidConfig or ErrUnknownWorkload.
func NewConfig(kind PrefetcherKind, opts ...Option) (Config, error) {
	var cfg Config
	if kind == PrefNone {
		cfg = sim.Default()
	} else {
		cfg = sim.WithFDP(kind)
	}
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return cfg, err
		}
	}
	if err := cfg.Validate(); err != nil {
		return cfg, err
	}
	return cfg, nil
}

// WithWorkload selects the instruction stream by name (see Workloads).
// Unknown names fail NewConfig with an error matching ErrUnknownWorkload.
func WithWorkload(name string) Option {
	return func(cfg *Config) error {
		if !workload.Exists(name) {
			return fmt.Errorf("%w %q (have %v)", ErrUnknownWorkload, name, workload.Names())
		}
		cfg.Workload = name
		return nil
	}
}

// WithInsts sets the retire target (post-warmup instructions).
func WithInsts(n uint64) Option {
	return func(cfg *Config) error { cfg.MaxInsts = n; return nil }
}

// WithWarmup discards statistics from the first n instructions while
// keeping all microarchitectural state warm (the paper's fast-forward
// methodology).
func WithWarmup(n uint64) Option {
	return func(cfg *Config) error { cfg.WarmupInsts = n; return nil }
}

// WithSeed sets the workload seed (structure is deterministic; the seed
// varies addresses).
func WithSeed(seed uint64) Option {
	return func(cfg *Config) error { cfg.Seed = seed; return nil }
}

// WithFixedAggressiveness pins the prefetcher at a Table 1 level
// (1 = very conservative .. 5 = very aggressive) and turns both FDP
// mechanisms off — the paper's "conventional prefetcher" configuration.
func WithFixedAggressiveness(level int) Option {
	return func(cfg *Config) error {
		cfg.StaticLevel = level
		cfg.FDP.DynamicAggressiveness = false
		cfg.FDP.DynamicInsertion = false
		cfg.FDP.StaticInsertion = PosMRU
		return nil
	}
}

// WithInsertion fixes the LRU-stack position for prefetch fills (the
// Section 3.3.2 policy space), disabling Dynamic Insertion.
func WithInsertion(pos InsertPos) Option {
	return func(cfg *Config) error {
		cfg.FDP.DynamicInsertion = false
		cfg.FDP.StaticInsertion = pos
		return nil
	}
}

// WithTInterval sets the FDP sampling interval in useful-block evictions
// (the paper's 8192 assumes 250M-instruction runs; shorter runs sample
// proportionally faster).
func WithTInterval(evictions uint64) Option {
	return func(cfg *Config) error { cfg.FDP.TInterval = evictions; return nil }
}

// WithCustomPrefetcher installs a user-defined prefetcher and selects
// PrefCustom. The instance must not be shared across runs.
func WithCustomPrefetcher(p Prefetcher) Option {
	return func(cfg *Config) error {
		cfg.Prefetcher = PrefCustom
		cfg.Custom = p
		return nil
	}
}

// WithProgress streams per-FDP-interval Snapshots (plus a Final one) to
// the given sink while the run is in flight. The sink is called from the
// simulation goroutine; see ProgressFunc.
func WithProgress(fn ProgressFunc) Option {
	return func(cfg *Config) error { cfg.Progress = fn; return nil }
}

// WithTracer streams one DecisionEvent per FDP sampling interval to the
// given sink while the run is in flight. The sink is called from the
// simulation goroutine at every interval boundary; a sink that does I/O
// should decouple itself (or wrap itself in an async drop-not-block
// queue) rather than stall the retire loop. A nil tracer costs nothing.
func WithTracer(t Tracer) Option {
	return func(cfg *Config) error { cfg.Tracer = t; return nil }
}

// WithFDPHistory records every sampling interval's metrics and decisions
// in Result.History.
func WithFDPHistory() Option {
	return func(cfg *Config) error { cfg.KeepFDPHistory = true; return nil }
}

// WithMaxCycles overrides the runaway-run safety valve (0 keeps the
// generous default).
func WithMaxCycles(n uint64) Option {
	return func(cfg *Config) error { cfg.MaxCycles = n; return nil }
}

// WithPrefetchCache adds a separate prefetch cache of the given geometry
// (the Section 5.7 comparison); ways 0 means fully associative.
func WithPrefetchCache(blocks, ways int) Option {
	return func(cfg *Config) error {
		cfg.PrefCacheBlocks = blocks
		cfg.PrefCacheWays = ways
		return nil
	}
}

// WithPerStreamRamp enables the stream prefetcher's per-stream adaptation
// (footnote 8's alternative to global feedback).
func WithPerStreamRamp() Option {
	return func(cfg *Config) error { cfg.PerStreamRamp = true; return nil }
}

// WithController selects the feedback decision policy by registry name
// ("fdp", "static-1".."static-5", "dspatch-dual", "tree"; see
// ControllerList). The empty name is the paper's Table 2 policy, bit-
// identical to "fdp". Unknown names fail NewConfig with an error
// matching ErrInvalidConfig.
func WithController(name string) Option {
	return func(cfg *Config) error { cfg.Controller = name; return nil }
}

// WithControllerModel supplies the decision-tree model (JSON, the
// docs/CONTROLLERS.md schema) for the "tree" controller and selects it.
// A nil or empty model keeps the embedded default.
func WithControllerModel(model []byte) Option {
	return func(cfg *Config) error {
		cfg.Controller = "tree"
		cfg.ControllerModel = model
		return nil
	}
}
