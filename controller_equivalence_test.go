package fdpsim

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
)

// TestControllerEquivalence is the controller-refactor counterpart of
// TestEngineGolden: selecting the Table 2 policy *explicitly* (Config.
// Controller = "fdp", routed through the internal/control registry and
// the Decider seam) must reproduce the seed engine bit for bit. Every
// single-core golden FDP case reruns with the explicit controller and is
// diffed against the same checked-in fingerprints — only the Result's
// Controller echo (absent from the goldens by construction) is zeroed
// before hashing. A mismatch means the pluggable-controller path altered
// a decision, not just relabeled it.
func TestControllerEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("reruns the single-core golden FDP suite; skipped with -short")
	}
	raw, err := os.ReadFile(engineGoldenPath)
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	want := make(map[string]string)
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("parse golden: %v", err)
	}

	kinds := []PrefetcherKind{PrefNone, PrefStream, PrefGHB, PrefStride, PrefNextLine, PrefDahlgren, PrefHybrid}
	for _, w := range Workloads() {
		for _, k := range kinds {
			name := fmt.Sprintf("%s/%s/fdp", w, k)
			cfg := goldenBase(k, w)
			cfg.Controller = "fdp"
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				wantFP, ok := want[name]
				if !ok {
					t.Fatalf("no golden fingerprint for %q", name)
				}
				res, err := Run(cfg)
				if err != nil {
					t.Fatalf("Run: %v", err)
				}
				res.Elapsed = 0
				res.Controller = "" // the label is the only permitted delta
				if got := fingerprintJSON(t, res); got != wantFP {
					t.Errorf("explicit fdp controller drifted from the golden engine: got %s want %s", got, wantFP)
				}
			})
		}
	}
}
